"""Trace serialization.

Two formats share the ``.trace`` extension, distinguished by magic:

- **v1** (text): a header line with metadata, then one line per dynamic
  instruction.  Deliberately simple — it exists so users can import
  streams produced by other tools (any trace convertible to
  ``ip size kind uops target taken next_ip`` rows can drive the
  simulators) and so cache entries stay inspectable.
- **v2** (binary): ``xbc-trace-v2\\n`` magic followed by one zlib
  stream whose payload is a JSON header line (name/suite/seed/counts/
  byteorder/kind table) and the raw bytes of the static instruction
  table plus the six dynamic columns of :class:`Trace`.  This is the
  columnar layout serialized as-is: the exec cache writes it, and
  loading is six ``array.frombytes`` calls instead of a per-line parse.

:func:`load_trace_auto` dispatches on the magic, so the cache keeps
reading v1 entries written before the columnar rewrite.
"""

from __future__ import annotations

import io
import json
import sys
import zlib
from array import array
from typing import Dict, TextIO, Union

from repro.common.errors import TraceFormatError
from repro.isa.instruction import KIND_CODE, Instruction, InstrKind
from repro.trace.record import DynInstr, Trace

_MAGIC = "xbc-trace-v1"
_MAGIC_V2 = b"xbc-trace-v2\n"

_KIND_CODES: Dict[InstrKind, str] = {
    InstrKind.ALU: "A",
    InstrKind.LOAD: "L",
    InstrKind.STORE: "S",
    InstrKind.COND_BRANCH: "C",
    InstrKind.JUMP: "J",
    InstrKind.INDIRECT_JUMP: "I",
    InstrKind.CALL: "K",
    InstrKind.INDIRECT_CALL: "X",
    InstrKind.RETURN: "R",
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def save_trace(trace: Trace, target: Union[str, TextIO]) -> None:
    """Write *trace* to a path or text stream."""
    own = isinstance(target, str)
    stream = open(target, "w", encoding="ascii") if own else target
    try:
        stream.write(
            f"{_MAGIC} name={trace.name or '-'} suite={trace.suite or '-'} "
            f"seed={trace.seed} n={len(trace)}\n"
        )
        # Static instructions repeat; emit each static IP's shape once.
        described = set()
        for record in trace.records:
            instr = record.instr
            if instr.ip not in described:
                described.add(instr.ip)
                target_field = instr.target if instr.target is not None else -1
                stream.write(
                    f"i {instr.ip} {instr.size} {_KIND_CODES[instr.kind]} "
                    f"{instr.num_uops} {target_field}\n"
                )
            stream.write(
                f"d {instr.ip} {1 if record.taken else 0} {record.next_ip}\n"
            )
    finally:
        if own:
            stream.close()


def load_trace(source: Union[str, TextIO]) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`~repro.common.errors.TraceFormatError` on any
    malformed content.
    """
    own = isinstance(source, str)
    stream = open(source, "r", encoding="ascii") if own else source
    try:
        header = stream.readline().strip()
        if not header.startswith(_MAGIC):
            raise TraceFormatError(f"bad magic: {header[:40]!r}")
        meta = dict(
            part.split("=", 1) for part in header.split()[1:] if "=" in part
        )
        instructions: Dict[int, Instruction] = {}
        records = []
        for line_no, line in enumerate(stream, start=2):
            fields = line.split()
            if not fields:
                continue
            try:
                if fields[0] == "i":
                    ip, size = int(fields[1]), int(fields[2])
                    kind = _CODE_KINDS[fields[3]]
                    uops = int(fields[4])
                    target = int(fields[5])
                    instructions[ip] = Instruction(
                        ip=ip,
                        size=size,
                        kind=kind,
                        num_uops=uops,
                        target=None if target < 0 else target,
                    )
                elif fields[0] == "d":
                    ip = int(fields[1])
                    taken = fields[2] == "1"
                    next_ip = int(fields[3])
                    records.append(
                        DynInstr(
                            instr=instructions[ip],
                            taken=taken,
                            next_ip=next_ip,
                        )
                    )
                else:
                    raise TraceFormatError(
                        f"line {line_no}: unknown record type {fields[0]!r}"
                    )
            except (KeyError, ValueError, IndexError) as exc:
                raise TraceFormatError(f"line {line_no}: {exc}") from exc
        return Trace(
            records=records,
            name="" if meta.get("name") == "-" else meta.get("name", ""),
            suite="" if meta.get("suite") == "-" else meta.get("suite", ""),
            seed=int(meta.get("seed", "0")),
        )
    finally:
        if own:
            stream.close()


def save_trace_binary(trace: Trace, path: str) -> None:
    """Write *trace* in the v2 binary format (magic + zlib payload)."""
    instrs = sorted(trace.instr_table.values(), key=lambda i: i.ip)
    header = {
        "name": trace.name,
        "suite": trace.suite,
        "seed": trace.seed,
        "n": len(trace),
        "m": len(instrs),
        "byteorder": sys.byteorder,
        # Kind table by code, so the payload does not depend on the
        # enum's declaration order staying put.
        "kinds": [kind.value for kind in InstrKind],
    }
    kind_code = KIND_CODE
    blob = b"".join(
        [
            json.dumps(header, sort_keys=True).encode("ascii") + b"\n",
            array("q", (i.ip for i in instrs)).tobytes(),
            array("q", (i.size for i in instrs)).tobytes(),
            array("b", (kind_code[i.kind] for i in instrs)).tobytes(),
            array("b", (i.num_uops for i in instrs)).tobytes(),
            array(
                "q",
                (i.target if i.target is not None else -1 for i in instrs),
            ).tobytes(),
            trace.ips.tobytes(),
            trace.takens.tobytes(),
            trace.next_ips.tobytes(),
            trace.kinds.tobytes(),
            trace.nuops.tobytes(),
            trace.snexts.tobytes(),
        ]
    )
    with open(path, "wb") as stream:
        stream.write(_MAGIC_V2)
        stream.write(zlib.compress(blob, 6))


def _load_trace_v2(compressed: bytes) -> Trace:
    try:
        blob = zlib.decompress(compressed)
        newline = blob.index(b"\n")
        header = json.loads(blob[:newline])
        n = header["n"]
        m = header["m"]
        swap = header["byteorder"] != sys.byteorder
        kind_by_code = [InstrKind(value) for value in header["kinds"]]
    except (zlib.error, ValueError, KeyError) as exc:
        raise TraceFormatError(f"corrupt v2 trace: {exc}") from exc

    offset = newline + 1

    def take(typecode: str, count: int) -> array:
        nonlocal offset
        column = array(typecode)
        size = column.itemsize * count
        column.frombytes(blob[offset : offset + size])
        if len(column) != count:
            raise TraceFormatError("truncated v2 trace")
        if swap:
            column.byteswap()
        offset += size
        return column

    i_ips = take("q", m)
    i_sizes = take("q", m)
    i_kinds = take("b", m)
    i_nuops = take("b", m)
    i_targets = take("q", m)
    try:
        instr_table: Dict[int, Instruction] = {}
        for j in range(m):
            target = i_targets[j]
            instr_table[i_ips[j]] = Instruction(
                ip=i_ips[j],
                size=i_sizes[j],
                kind=kind_by_code[i_kinds[j]],
                num_uops=i_nuops[j],
                target=None if target < 0 else target,
            )
    except IndexError as exc:
        raise TraceFormatError(f"corrupt v2 trace: {exc}") from exc

    return Trace.from_columns(
        ips=take("q", n),
        takens=take("b", n),
        next_ips=take("q", n),
        kinds=take("b", n),
        nuops=take("b", n),
        snexts=take("q", n),
        instr_table=instr_table,
        name=header.get("name", ""),
        suite=header.get("suite", ""),
        seed=header.get("seed", 0),
    )


def load_trace_auto(path: str) -> Trace:
    """Load a trace file of either format, dispatching on the magic."""
    with open(path, "rb") as stream:
        head = stream.read(len(_MAGIC_V2))
        if head == _MAGIC_V2:
            return _load_trace_v2(stream.read())
    return load_trace(path)


def trace_to_string(trace: Trace) -> str:
    """Serialize to an in-memory string (round-trip helper for tests)."""
    buffer = io.StringIO()
    save_trace(trace, buffer)
    return buffer.getvalue()


def trace_from_string(text: str) -> Trace:
    """Parse a trace from an in-memory string."""
    return load_trace(io.StringIO(text))
