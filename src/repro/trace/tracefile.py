"""Trace serialization.

Traces are stored as plain text: a header line with metadata, then one
line per dynamic instruction.  The format is deliberately simple — it
exists so examples can cache expensive traces and so users can import
streams produced by other tools (any trace convertible to
``ip size kind uops target taken next_ip`` rows can drive the
simulators).
"""

from __future__ import annotations

import io
from typing import Dict, TextIO, Union

from repro.common.errors import TraceFormatError
from repro.isa.instruction import Instruction, InstrKind
from repro.trace.record import DynInstr, Trace

_MAGIC = "xbc-trace-v1"

_KIND_CODES: Dict[InstrKind, str] = {
    InstrKind.ALU: "A",
    InstrKind.LOAD: "L",
    InstrKind.STORE: "S",
    InstrKind.COND_BRANCH: "C",
    InstrKind.JUMP: "J",
    InstrKind.INDIRECT_JUMP: "I",
    InstrKind.CALL: "K",
    InstrKind.INDIRECT_CALL: "X",
    InstrKind.RETURN: "R",
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def save_trace(trace: Trace, target: Union[str, TextIO]) -> None:
    """Write *trace* to a path or text stream."""
    own = isinstance(target, str)
    stream = open(target, "w", encoding="ascii") if own else target
    try:
        stream.write(
            f"{_MAGIC} name={trace.name or '-'} suite={trace.suite or '-'} "
            f"seed={trace.seed} n={len(trace)}\n"
        )
        # Static instructions repeat; emit each static IP's shape once.
        described = set()
        for record in trace.records:
            instr = record.instr
            if instr.ip not in described:
                described.add(instr.ip)
                target_field = instr.target if instr.target is not None else -1
                stream.write(
                    f"i {instr.ip} {instr.size} {_KIND_CODES[instr.kind]} "
                    f"{instr.num_uops} {target_field}\n"
                )
            stream.write(
                f"d {instr.ip} {1 if record.taken else 0} {record.next_ip}\n"
            )
    finally:
        if own:
            stream.close()


def load_trace(source: Union[str, TextIO]) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`~repro.common.errors.TraceFormatError` on any
    malformed content.
    """
    own = isinstance(source, str)
    stream = open(source, "r", encoding="ascii") if own else source
    try:
        header = stream.readline().strip()
        if not header.startswith(_MAGIC):
            raise TraceFormatError(f"bad magic: {header[:40]!r}")
        meta = dict(
            part.split("=", 1) for part in header.split()[1:] if "=" in part
        )
        instructions: Dict[int, Instruction] = {}
        records = []
        for line_no, line in enumerate(stream, start=2):
            fields = line.split()
            if not fields:
                continue
            try:
                if fields[0] == "i":
                    ip, size = int(fields[1]), int(fields[2])
                    kind = _CODE_KINDS[fields[3]]
                    uops = int(fields[4])
                    target = int(fields[5])
                    instructions[ip] = Instruction(
                        ip=ip,
                        size=size,
                        kind=kind,
                        num_uops=uops,
                        target=None if target < 0 else target,
                    )
                elif fields[0] == "d":
                    ip = int(fields[1])
                    taken = fields[2] == "1"
                    next_ip = int(fields[3])
                    records.append(
                        DynInstr(
                            instr=instructions[ip],
                            taken=taken,
                            next_ip=next_ip,
                        )
                    )
                else:
                    raise TraceFormatError(
                        f"line {line_no}: unknown record type {fields[0]!r}"
                    )
            except (KeyError, ValueError, IndexError) as exc:
                raise TraceFormatError(f"line {line_no}: {exc}") from exc
        return Trace(
            records=records,
            name="" if meta.get("name") == "-" else meta.get("name", ""),
            suite="" if meta.get("suite") == "-" else meta.get("suite", ""),
            seed=int(meta.get("seed", "0")),
        )
    finally:
        if own:
            stream.close()


def trace_to_string(trace: Trace) -> str:
    """Serialize to an in-memory string (round-trip helper for tests)."""
    buffer = io.StringIO()
    save_trace(trace, buffer)
    return buffer.getvalue()


def trace_from_string(text: str) -> Trace:
    """Parse a trace from an in-memory string."""
    return load_trace(io.StringIO(text))
