"""Trace-driven execution substrate.

The paper's simulator is trace-driven: a recorded dynamic instruction
stream is replayed through stand-alone frontend models.  This package
produces such streams from synthetic programs
(:mod:`repro.trace.executor`), serializes them
(:mod:`repro.trace.tracefile`), and computes the block-length
statistics of Figure 1 (:mod:`repro.trace.blockstats`).
"""

from repro.trace.record import DynInstr, Trace
from repro.trace.executor import TraceExecutor, execute_program
from repro.trace.blockstats import BlockLengthStats, compute_block_stats
from repro.trace.tracefile import save_trace, load_trace

__all__ = [
    "DynInstr",
    "Trace",
    "TraceExecutor",
    "execute_program",
    "BlockLengthStats",
    "compute_block_stats",
    "save_trace",
    "load_trace",
]
