"""Trace-driven executor: walks a synthetic program's CFG.

The executor is the synthetic stand-in for the paper's trace collector:
it follows real control flow through the generated program — evaluating
each branch's behaviour model, maintaining a call stack for
call/return pairing — and emits the dynamic instruction stream the
frontend simulators replay.

Since the columnar rewrite the executor appends straight into the
trace's packed columns.  The hot loop works on *chain nodes*: each
basic block's body is rendered once into per-column arrays, maximal
runs of unconditional-jump successors are fused into one node (their
terminators are static, so the whole chain replays with six
``array.extend`` calls), and only the final terminator of a chain is
resolved dynamically.  Loop backedges with stable behaviour runs are
batched: a :class:`~repro.program.behavior.LoopBehavior` commits a run
of consecutive taken outcomes in one call and the loop body's columns
are emitted ``k`` times via C-level array repetition instead of ``k``
trips through the Python loop.

Both fast paths are budget-guarded so the emitted stream is
byte-identical to plain block-at-a-time execution: a chain or batch is
only fused when block-wise execution would provably have emitted every
one of its blocks, and the run falls back to the block-wise loop for
the final blocks near the budget boundary.

Execution ends when the uop budget is reached (the synthetic ``main``
loops forever by construction, mirroring how the paper samples 30M
consecutive instructions out of longer executions).  The final block
is emitted whole, so the trace may overshoot ``max_uops`` by up to one
block; ``max_instructions``, in contrast, is enforced exactly — the
final block's columns are trimmed to the cap.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.isa.instruction import KIND_CODE
from repro.program.behavior import BiasedBehavior, PatternBehavior
from repro.program.cfg import LayoutBlock, Program, TerminatorKind
from repro.trace.record import Trace

#: Hard cap on the executor's call stack; deeper than any generated
#: call graph, so hitting it means a generator bug (recursion).
_MAX_CALL_DEPTH = 128

#: Upper bound on blocks fused into one chain node (bounds template
#: memory for degenerate jump-heavy layouts).
_MAX_CHAIN_BLOCKS = 64

#: Integer terminator modes of a chain node's *final* block (the only
#: dynamic decision per node; compare-to-int beats enum identity in
#: the hot loop).
_MODE_COND = 0
_MODE_JUMP = 1
_MODE_CALL = 2
_MODE_INDIRECT_CALL = 3
_MODE_INDIRECT = 4
_MODE_RET = 5

_TERM_MODE = {
    TerminatorKind.COND: _MODE_COND,
    TerminatorKind.JUMP: _MODE_JUMP,
    TerminatorKind.CALL: _MODE_CALL,
    TerminatorKind.INDIRECT_CALL: _MODE_INDIRECT_CALL,
    TerminatorKind.INDIRECT: _MODE_INDIRECT,
    TerminatorKind.RET: _MODE_RET,
}


class _BlockTemplate:
    """Precomputed columnar rendering of one block's body + terminator.

    Used by the block-wise tail loop that finishes a run near the
    budget boundary (where chain fusion is no longer provably
    equivalent to block-at-a-time execution).
    """

    __slots__ = (
        "ips", "zeros", "next_ips", "kinds", "nuops", "snexts",
        "body_uops", "term_ip", "term_kind_code", "term_nuops",
        "term_snext", "total_len",
    )

    def __init__(self, block: LayoutBlock) -> None:
        self.ips = array("q")
        self.next_ips = array("q")
        self.kinds = array("b")
        self.nuops = array("b")
        self.snexts = array("q")
        kind_code = KIND_CODE
        uops = 0
        for instr in block.body:
            self.ips.append(instr.ip)
            self.next_ips.append(instr.next_ip)
            self.kinds.append(kind_code[instr.kind])
            self.nuops.append(instr.num_uops)
            self.snexts.append(instr.next_ip)
            uops += instr.num_uops
        self.zeros = array("b", bytes(len(self.ips)))
        self.body_uops = uops
        term = block.terminator
        self.term_ip = term.ip
        self.term_kind_code = kind_code[term.kind]
        self.term_nuops = term.num_uops
        self.term_snext = term.next_ip
        self.total_len = len(self.ips) + 1


class _ChainNode:
    """A maximal static chain: jump-linked blocks fused into one unit.

    ``c_*`` columns cover every chain block in full (bodies plus their
    unconditional-jump terminator rows, pre-resolved: taken=1, next =
    successor entry) and the *final* block's body; the final block's
    terminator is the node's single dynamic decision, described by the
    ``term_*``/``mode`` fields.  ``guard_uops``/``guard_rows`` are the
    chain's size *excluding the final block* — block-wise execution
    emits the whole chain exactly when the budget clears the guard, so
    the fused replay is byte-identical whenever the guard passes.
    """

    __slots__ = (
        "first_bid", "final_block", "instrs", "epoch",
        "c_ips", "c_takens", "c_next_ips", "c_kinds", "c_nuops",
        "c_snexts", "c_uops", "c_rows",
        "guard_uops", "guard_rows",
        "mode", "behavior", "taken_run",
        "cond_kind", "bias_random", "bias_p", "pattern",
        "term_ip", "term_kind_code", "term_nuops", "term_snext",
        "taken_bid", "fall_bid", "taken_entry", "fall_entry",
        "loop",
    )


class TraceExecutor:
    """Executes a program, producing a :class:`~repro.trace.record.Trace`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._templates: Dict[int, _BlockTemplate] = {}
        self._nodes: Dict[int, _ChainNode] = {}
        #: bumped per run(); nodes stamp it when their instructions are
        #: (re)registered into the run's instruction table.
        self._epoch = 0

    # ------------------------------------------------------------------
    # chain-node construction
    # ------------------------------------------------------------------

    def _node(self, bid: int) -> _ChainNode:
        """The chain node starting at block *bid* (built lazily)."""
        node = self._nodes.get(bid)
        if node is None:
            node = self._build_node(bid)
            self._nodes[bid] = node
        return node

    def _build_node(self, bid: int) -> _ChainNode:
        program = self.program
        kind_code = KIND_CODE
        node = _ChainNode()
        node.first_bid = bid
        node.epoch = -1
        node.loop = None

        c_ips = array("q")
        c_takens = array("b")
        c_next_ips = array("q")
        c_kinds = array("b")
        c_nuops = array("b")
        c_snexts = array("q")
        instrs = []
        uops = 0
        guard_uops = 0
        guard_rows = 0

        seen = set()
        block = program.blocks[bid]
        # Fuse jump-linked predecessors of the final dynamic decision.
        while (
            block.terminator_kind is TerminatorKind.JUMP
            and block.bid not in seen
            and len(seen) < _MAX_CHAIN_BLOCKS
        ):
            seen.add(block.bid)
            target = program.blocks[block.taken_bid]
            for instr in block.body:
                c_ips.append(instr.ip)
                c_takens.append(0)
                c_next_ips.append(instr.next_ip)
                c_kinds.append(kind_code[instr.kind])
                c_nuops.append(instr.num_uops)
                c_snexts.append(instr.next_ip)
                uops += instr.num_uops
                instrs.append(instr)
            term = block.terminator
            c_ips.append(term.ip)
            c_takens.append(1)
            c_next_ips.append(target.entry_ip)
            c_kinds.append(kind_code[term.kind])
            c_nuops.append(term.num_uops)
            c_snexts.append(term.next_ip)
            uops += term.num_uops
            instrs.append(term)
            guard_uops = uops
            guard_rows = len(c_ips)
            block = target

        # Final block: body rows only; its terminator is dynamic.
        for instr in block.body:
            c_ips.append(instr.ip)
            c_takens.append(0)
            c_next_ips.append(instr.next_ip)
            c_kinds.append(kind_code[instr.kind])
            c_nuops.append(instr.num_uops)
            c_snexts.append(instr.next_ip)
            uops += instr.num_uops
            instrs.append(instr)
        term = block.terminator
        instrs.append(term)

        node.final_block = block
        node.instrs = instrs
        node.c_ips = c_ips
        node.c_takens = c_takens
        node.c_next_ips = c_next_ips
        node.c_kinds = c_kinds
        node.c_nuops = c_nuops
        node.c_snexts = c_snexts
        node.c_uops = uops
        node.c_rows = len(c_ips)
        # The final block (body + terminator) is emitted as one
        # block-wise step; everything before it must clear the budget.
        node.guard_uops = guard_uops
        node.guard_rows = guard_rows

        node.mode = _TERM_MODE[block.terminator_kind]
        node.term_ip = term.ip
        node.term_kind_code = kind_code[term.kind]
        node.term_nuops = term.num_uops
        node.term_snext = term.next_ip
        node.taken_bid = block.taken_bid
        node.fall_bid = block.fall_bid
        node.taken_entry = (
            program.blocks[block.taken_bid].entry_ip
            if block.taken_bid is not None else 0
        )
        node.fall_entry = (
            program.blocks[block.fall_bid].entry_ip
            if block.fall_bid is not None else 0
        )
        node.behavior = None
        node.taken_run = None
        node.cond_kind = 0
        node.bias_random = None
        node.bias_p = 0.0
        node.pattern = None
        if node.mode == _MODE_COND:
            behavior = program.cond_behaviors[term.ip]
            node.behavior = behavior
            node.taken_run = getattr(behavior, "taken_run", None)
            # Inline the two stateless-per-call behaviour kinds: the
            # loop resolves them without a method call.  reset() keeps
            # the underlying generator object, so the bound ``random``
            # stays valid across runs.
            if type(behavior) is BiasedBehavior:
                node.cond_kind = 1
                node.bias_random = behavior._rng._materialize().random
                node.bias_p = behavior.p_taken
            elif type(behavior) is PatternBehavior:
                node.cond_kind = 2
                node.pattern = tuple(behavior.pattern)
        elif node.mode in (_MODE_INDIRECT, _MODE_INDIRECT_CALL):
            node.behavior = program.indirect_behaviors[term.ip]
        return node

    def _loop_template(self, node: _ChainNode):
        """Batched-iteration template for a self-looping conditional.

        One iteration is the taken terminator row followed by the loop
        body's chain columns (which end back at this terminator).
        ``None`` when the taken path does not statically return here or
        the behaviour cannot commit taken runs.
        """
        if node.loop is None:
            template: object = False
            if node.taken_run is not None and node.taken_bid is not None:
                body = self._node(node.taken_bid)
                if body.final_block.bid == node.final_block.bid:
                    l_ips = array("q", [node.term_ip]) + body.c_ips
                    l_takens = array("b", [1]) + body.c_takens
                    l_next_ips = array("q", [node.taken_entry]) + body.c_next_ips
                    l_kinds = array("b", [node.term_kind_code]) + body.c_kinds
                    l_nuops = array("b", [node.term_nuops]) + body.c_nuops
                    l_snexts = array("q", [node.term_snext]) + body.c_snexts
                    template = (
                        l_ips, l_takens, l_next_ips, l_kinds, l_nuops,
                        l_snexts, node.term_nuops + body.c_uops,
                        1 + body.c_rows, body,
                    )
            node.loop = template
        return node.loop

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, max_uops: int, max_instructions: Optional[int] = None) -> Trace:
        """Execute from the program entry until *max_uops* are emitted.

        The final block is always emitted in full, so the trace may
        overshoot the uop budget by up to one block.  When
        *max_instructions* is given it is enforced exactly: the final
        block's columns are trimmed to the cap.
        """
        program = self.program
        if program.behaviors_dirty:
            program.reset_behaviors()
        program.behaviors_dirty = True
        self._epoch += 1
        epoch = self._epoch
        ips = array("q")
        takens = array("b")
        next_ips = array("q")
        kinds = array("b")
        nuops = array("b")
        snexts = array("q")
        ips_extend = ips.extend
        takens_extend = takens.extend
        next_ips_extend = next_ips.extend
        kinds_extend = kinds.extend
        nuops_extend = nuops.extend
        snexts_extend = snexts.extend
        ips_append = ips.append
        takens_append = takens.append
        next_ips_append = next_ips.append
        kinds_append = kinds.append
        nuops_append = nuops.append
        snexts_append = snexts.append
        instr_table: Dict[int, object] = {}
        uops = 0
        count = 0
        instr_cap = max_instructions if max_instructions is not None else 2**62

        call_stack: List[int] = []  # bids execution resumes at after RET
        nodes = self._nodes
        node = self._node(program.entry_block.bid)

        while uops < max_uops and count < instr_cap:
            guard_uops = node.guard_uops
            if (
                uops + guard_uops >= max_uops
                or count + node.guard_rows >= instr_cap
            ):
                # Budget boundary inside the chain: finish block-wise
                # (provably identical; fusion no longer is).
                uops, count = self._run_blockwise(
                    program.blocks[node.first_bid], max_uops, instr_cap,
                    ips, takens, next_ips, kinds, nuops, snexts,
                    instr_table, uops, count, call_stack,
                )
                break

            if node.epoch != epoch:
                # First visit this run: register the chain's static
                # instructions into the trace's instruction table.
                node.epoch = epoch
                for instr in node.instrs:
                    instr_table[instr.ip] = instr

            # Chain columns: bodies + static jump rows, one extend each.
            ips_extend(node.c_ips)
            takens_extend(node.c_takens)
            next_ips_extend(node.c_next_ips)
            kinds_extend(node.c_kinds)
            nuops_extend(node.c_nuops)
            snexts_extend(node.c_snexts)
            uops += node.c_uops
            count += node.c_rows + 1

            # Final terminator: the node's one dynamic decision.
            mode = node.mode
            if mode == _MODE_COND:
                behavior = node.behavior
                cond_kind = node.cond_kind
                if cond_kind == 1:
                    taken = node.bias_random() < node.bias_p
                elif cond_kind == 2:
                    pattern = node.pattern
                    cur = behavior._cursor
                    taken = pattern[cur]
                    cur += 1
                    behavior._cursor = 0 if cur == len(pattern) else cur
                else:
                    if node.taken_run is not None:
                        loop = node.loop
                        if loop is None:
                            loop = self._loop_template(node)
                        if loop is not False:
                            iter_uops = loop[6]
                            iter_rows = loop[7]
                            cap = (max_uops - 1 - uops - guard_uops) // iter_uops
                            rcap = (
                                instr_cap - 1 - count - node.guard_rows
                            ) // iter_rows
                            if rcap < cap:
                                cap = rcap
                            if cap > 0:
                                k = node.taken_run(cap)
                                body = loop[8]
                                if k > 0 and body.epoch != epoch:
                                    # The batch may exhaust the loop, in
                                    # which case the body node is never
                                    # visited at the loop top — register
                                    # its instructions here.
                                    body.epoch = epoch
                                    for instr in body.instrs:
                                        instr_table[instr.ip] = instr
                                if k == 1:
                                    ips_extend(loop[0])
                                    takens_extend(loop[1])
                                    next_ips_extend(loop[2])
                                    kinds_extend(loop[3])
                                    nuops_extend(loop[4])
                                    snexts_extend(loop[5])
                                    uops += iter_uops
                                    count += iter_rows
                                elif k > 1:
                                    ips_extend(loop[0] * k)
                                    takens_extend(loop[1] * k)
                                    next_ips_extend(loop[2] * k)
                                    kinds_extend(loop[3] * k)
                                    nuops_extend(loop[4] * k)
                                    snexts_extend(loop[5] * k)
                                    uops += k * iter_uops
                                    count += k * iter_rows
                    taken = behavior.next_taken()
                if taken:
                    next_bid = node.taken_bid
                    next_ip = node.taken_entry
                else:
                    next_bid = node.fall_bid
                    next_ip = node.fall_entry
                takens_append(1 if taken else 0)
            elif mode == _MODE_JUMP:
                # Degenerate chain break (jump cycle or length cap).
                next_bid = node.taken_bid
                next_ip = node.taken_entry
                takens_append(1)
            elif mode == _MODE_CALL:
                if len(call_stack) >= _MAX_CALL_DEPTH:
                    raise SimulationError(
                        "call stack overflow: recursive call graph?"
                    )
                call_stack.append(node.fall_bid)
                next_bid = node.taken_bid
                next_ip = node.taken_entry
                takens_append(1)
            elif mode == _MODE_RET:
                if not call_stack:
                    raise SimulationError(
                        f"return at {node.term_ip:#x} with an empty call stack"
                    )
                next_bid = call_stack.pop()
                next_ip = program.blocks[next_bid].entry_ip
                takens_append(1)
            else:  # indirect jump / indirect call
                if mode == _MODE_INDIRECT_CALL:
                    if len(call_stack) >= _MAX_CALL_DEPTH:
                        raise SimulationError(
                            "call stack overflow: recursive call graph?"
                        )
                    call_stack.append(node.fall_bid)
                target_ip = node.behavior.next_target()
                nxt = program.block_at_ip(target_ip)
                if nxt is None:
                    raise SimulationError(
                        f"indirect branch at {node.term_ip:#x} targets "
                        f"non-block {target_ip:#x}"
                    )
                next_bid = nxt.bid
                next_ip = nxt.entry_ip
                takens_append(1)

            ips_append(node.term_ip)
            next_ips_append(next_ip)
            kinds_append(node.term_kind_code)
            nuops_append(node.term_nuops)
            snexts_append(node.term_snext)
            uops += node.term_nuops

            nxt_node = nodes.get(next_bid)
            node = nxt_node if nxt_node is not None else self._node(next_bid)

        if max_instructions is not None and len(ips) > max_instructions:
            # Exact instruction cap: trim the final block's overshoot.
            del ips[max_instructions:]
            del takens[max_instructions:]
            del next_ips[max_instructions:]
            del kinds[max_instructions:]
            del nuops[max_instructions:]
            del snexts[max_instructions:]

        return Trace.from_columns(
            ips, takens, next_ips, kinds, nuops, snexts, instr_table,
            name=program.name, suite=program.suite, seed=program.seed,
        )

    def _run_blockwise(
        self,
        block: LayoutBlock,
        max_uops: int,
        instr_cap: int,
        ips, takens, next_ips, kinds, nuops, snexts,
        instr_table, uops: int, count: int,
        call_stack: List[int],
    ) -> Tuple[int, int]:
        """Block-at-a-time tail: the pre-fusion algorithm, verbatim.

        Runs the last blocks of a trace, where the chain guard can no
        longer prove fused emission equivalent.  Returns the final
        ``(uops, count)``.
        """
        program = self.program
        templates = self._templates
        execute_terminator = self._execute_terminator

        while uops < max_uops and count < instr_cap:
            template = templates.get(block.bid)
            if template is None:
                template = _BlockTemplate(block)
                templates[block.bid] = template
                for instr in block.body:
                    instr_table[instr.ip] = instr
                instr_table[block.terminator.ip] = block.terminator
            elif template.term_ip not in instr_table:
                # A fresh run() call reuses templates but rebuilds the
                # table, so re-register the block's instructions.
                for instr in block.body:
                    instr_table[instr.ip] = instr
                instr_table[block.terminator.ip] = block.terminator

            # Body: straight columnar replay of the template.
            ips.extend(template.ips)
            takens.extend(template.zeros)
            next_ips.extend(template.next_ips)
            kinds.extend(template.kinds)
            nuops.extend(template.nuops)
            snexts.extend(template.snexts)
            uops += template.body_uops

            # Terminator: the only dynamic part.
            next_block, taken, next_ip = execute_terminator(block, call_stack)
            ips.append(template.term_ip)
            takens.append(1 if taken else 0)
            next_ips.append(next_ip)
            kinds.append(template.term_kind_code)
            nuops.append(template.term_nuops)
            snexts.append(template.term_snext)
            uops += template.term_nuops
            count += template.total_len

            if next_block is None:
                raise SimulationError(
                    f"execution fell off the program at block {block.bid} "
                    f"({block.terminator_kind.value} terminator)"
                )
            block = next_block
        return uops, count

    # ------------------------------------------------------------------

    def _execute_terminator(
        self,
        block: LayoutBlock,
        call_stack: List[int],
    ) -> Tuple[Optional[LayoutBlock], bool, int]:
        """Resolve the terminator; returns ``(next_block, taken, next_ip)``."""
        program = self.program
        kind = block.terminator_kind
        term = block.terminator

        if kind is TerminatorKind.COND:
            behavior = program.cond_behaviors[term.ip]
            taken = behavior.next_taken()
            bid = block.taken_bid if taken else block.fall_bid
            nxt = program.blocks[bid]
            return nxt, taken, nxt.entry_ip

        if kind is TerminatorKind.JUMP:
            nxt = program.blocks[block.taken_bid]
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.CALL:
            if len(call_stack) >= _MAX_CALL_DEPTH:
                raise SimulationError("call stack overflow: recursive call graph?")
            call_stack.append(block.fall_bid)
            nxt = program.blocks[block.taken_bid]
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.INDIRECT_CALL:
            if len(call_stack) >= _MAX_CALL_DEPTH:
                raise SimulationError("call stack overflow: recursive call graph?")
            behavior = program.indirect_behaviors[term.ip]
            target_ip = behavior.next_target()
            nxt = program.block_at_ip(target_ip)
            if nxt is None:
                raise SimulationError(
                    f"indirect call at {term.ip:#x} targets non-block {target_ip:#x}"
                )
            call_stack.append(block.fall_bid)
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.INDIRECT:
            behavior = program.indirect_behaviors[term.ip]
            target_ip = behavior.next_target()
            nxt = program.block_at_ip(target_ip)
            if nxt is None:
                raise SimulationError(
                    f"indirect jump at {term.ip:#x} targets non-block {target_ip:#x}"
                )
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.RET:
            if not call_stack:
                raise SimulationError(
                    f"return at {term.ip:#x} with an empty call stack"
                )
            bid = call_stack.pop()
            nxt = program.blocks[bid]
            return nxt, True, nxt.entry_ip

        raise SimulationError(f"unhandled terminator kind {kind}")


def execute_program(program: Program, max_uops: int) -> Trace:
    """Convenience wrapper: run *program* for *max_uops* uops."""
    return TraceExecutor(program).run(max_uops=max_uops)
