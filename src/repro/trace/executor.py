"""Trace-driven executor: walks a synthetic program's CFG.

The executor is the synthetic stand-in for the paper's trace collector:
it follows real control flow through the generated program — evaluating
each branch's behaviour model, maintaining a call stack for
call/return pairing — and emits the dynamic instruction stream the
frontend simulators replay.

Execution ends when the uop budget is reached (the synthetic ``main``
loops forever by construction, mirroring how the paper samples 30M
consecutive instructions out of longer executions).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import SimulationError
from repro.program.cfg import LayoutBlock, Program, TerminatorKind
from repro.trace.record import DynInstr, Trace

#: Hard cap on the executor's call stack; deeper than any generated
#: call graph, so hitting it means a generator bug (recursion).
_MAX_CALL_DEPTH = 128


class TraceExecutor:
    """Executes a program, producing a :class:`~repro.trace.record.Trace`."""

    def __init__(self, program: Program) -> None:
        self.program = program

    def run(self, max_uops: int, max_instructions: Optional[int] = None) -> Trace:
        """Execute from the program entry until *max_uops* are emitted.

        The final block is always emitted in full, so the trace may
        overshoot the budget by up to one block.
        """
        program = self.program
        program.reset_behaviors()
        records: List[DynInstr] = []
        uops = 0
        instr_cap = max_instructions if max_instructions is not None else 2**62

        call_stack: List[int] = []  # bids execution resumes at after RET
        block = program.entry_block

        while uops < max_uops and len(records) < instr_cap:
            uops += self._emit_body(block, records)
            next_block, taken, next_ip = self._execute_terminator(block, call_stack)
            term = block.terminator
            records.append(DynInstr(instr=term, taken=taken, next_ip=next_ip))
            uops += term.num_uops
            if next_block is None:
                raise SimulationError(
                    f"execution fell off the program at block {block.bid} "
                    f"({block.terminator_kind.value} terminator)"
                )
            block = next_block

        return Trace(
            records=records,
            name=program.name,
            suite=program.suite,
            seed=program.seed,
        )

    # ------------------------------------------------------------------

    def _emit_body(self, block: LayoutBlock, records: List[DynInstr]) -> int:
        """Emit the block's non-branch instructions; returns uops emitted."""
        uops = 0
        for instr in block.body:
            records.append(
                DynInstr(instr=instr, taken=False, next_ip=instr.next_ip)
            )
            uops += instr.num_uops
        return uops

    def _execute_terminator(
        self,
        block: LayoutBlock,
        call_stack: List[int],
    ):
        """Resolve the terminator; returns ``(next_block, taken, next_ip)``."""
        program = self.program
        kind = block.terminator_kind
        term = block.terminator

        if kind is TerminatorKind.COND:
            behavior = program.cond_behaviors[term.ip]
            taken = behavior.next_taken()
            bid = block.taken_bid if taken else block.fall_bid
            nxt = program.blocks[bid]
            return nxt, taken, nxt.entry_ip

        if kind is TerminatorKind.JUMP:
            nxt = program.blocks[block.taken_bid]
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.CALL:
            if len(call_stack) >= _MAX_CALL_DEPTH:
                raise SimulationError("call stack overflow: recursive call graph?")
            call_stack.append(block.fall_bid)
            nxt = program.blocks[block.taken_bid]
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.INDIRECT_CALL:
            if len(call_stack) >= _MAX_CALL_DEPTH:
                raise SimulationError("call stack overflow: recursive call graph?")
            behavior = program.indirect_behaviors[term.ip]
            target_ip = behavior.next_target()
            nxt = program.block_at_ip(target_ip)
            if nxt is None:
                raise SimulationError(
                    f"indirect call at {term.ip:#x} targets non-block {target_ip:#x}"
                )
            call_stack.append(block.fall_bid)
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.INDIRECT:
            behavior = program.indirect_behaviors[term.ip]
            target_ip = behavior.next_target()
            nxt = program.block_at_ip(target_ip)
            if nxt is None:
                raise SimulationError(
                    f"indirect jump at {term.ip:#x} targets non-block {target_ip:#x}"
                )
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.RET:
            if not call_stack:
                raise SimulationError(
                    f"return at {term.ip:#x} with an empty call stack"
                )
            bid = call_stack.pop()
            nxt = program.blocks[bid]
            return nxt, True, nxt.entry_ip

        raise SimulationError(f"unhandled terminator kind {kind}")


def execute_program(program: Program, max_uops: int) -> Trace:
    """Convenience wrapper: run *program* for *max_uops* uops."""
    return TraceExecutor(program).run(max_uops=max_uops)
