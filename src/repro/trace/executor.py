"""Trace-driven executor: walks a synthetic program's CFG.

The executor is the synthetic stand-in for the paper's trace collector:
it follows real control flow through the generated program — evaluating
each branch's behaviour model, maintaining a call stack for
call/return pairing — and emits the dynamic instruction stream the
frontend simulators replay.

Since the columnar rewrite the executor appends straight into the
trace's packed columns.  Each basic block's body is identical on every
execution, so it is rendered once into a *template* (per-column arrays
plus the static instruction entries) and replayed with C-speed
``array.extend`` calls; only the terminator's dynamic outcome is
resolved per execution.

Execution ends when the uop budget is reached (the synthetic ``main``
loops forever by construction, mirroring how the paper samples 30M
consecutive instructions out of longer executions).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.isa.instruction import KIND_CODE
from repro.program.cfg import LayoutBlock, Program, TerminatorKind
from repro.trace.record import Trace

#: Hard cap on the executor's call stack; deeper than any generated
#: call graph, so hitting it means a generator bug (recursion).
_MAX_CALL_DEPTH = 128


class _BlockTemplate:
    """Precomputed columnar rendering of one block's body + terminator."""

    __slots__ = (
        "ips", "zeros", "next_ips", "kinds", "nuops", "snexts",
        "body_uops", "term_ip", "term_kind_code", "term_nuops",
        "term_snext", "total_len",
    )

    def __init__(self, block: LayoutBlock) -> None:
        self.ips = array("q")
        self.next_ips = array("q")
        self.kinds = array("b")
        self.nuops = array("b")
        self.snexts = array("q")
        kind_code = KIND_CODE
        uops = 0
        for instr in block.body:
            self.ips.append(instr.ip)
            self.next_ips.append(instr.next_ip)
            self.kinds.append(kind_code[instr.kind])
            self.nuops.append(instr.num_uops)
            self.snexts.append(instr.next_ip)
            uops += instr.num_uops
        self.zeros = array("b", bytes(len(self.ips)))
        self.body_uops = uops
        term = block.terminator
        self.term_ip = term.ip
        self.term_kind_code = kind_code[term.kind]
        self.term_nuops = term.num_uops
        self.term_snext = term.next_ip
        self.total_len = len(self.ips) + 1


class TraceExecutor:
    """Executes a program, producing a :class:`~repro.trace.record.Trace`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._templates: Dict[int, _BlockTemplate] = {}

    def run(self, max_uops: int, max_instructions: Optional[int] = None) -> Trace:
        """Execute from the program entry until *max_uops* are emitted.

        The final block is always emitted in full, so the trace may
        overshoot the budget by up to one block.
        """
        program = self.program
        program.reset_behaviors()
        ips = array("q")
        takens = array("b")
        next_ips = array("q")
        kinds = array("b")
        nuops = array("b")
        snexts = array("q")
        instr_table = {}
        uops = 0
        count = 0
        instr_cap = max_instructions if max_instructions is not None else 2**62

        call_stack: List[int] = []  # bids execution resumes at after RET
        block = program.entry_block
        templates = self._templates
        execute_terminator = self._execute_terminator

        while uops < max_uops and count < instr_cap:
            template = templates.get(block.bid)
            if template is None:
                template = _BlockTemplate(block)
                templates[block.bid] = template
                for instr in block.body:
                    instr_table[instr.ip] = instr
                instr_table[block.terminator.ip] = block.terminator
            elif template.term_ip not in instr_table:
                # A fresh run() call reuses templates but rebuilds the
                # table, so re-register the block's instructions.
                for instr in block.body:
                    instr_table[instr.ip] = instr
                instr_table[block.terminator.ip] = block.terminator

            # Body: straight columnar replay of the template.
            ips.extend(template.ips)
            takens.extend(template.zeros)
            next_ips.extend(template.next_ips)
            kinds.extend(template.kinds)
            nuops.extend(template.nuops)
            snexts.extend(template.snexts)
            uops += template.body_uops

            # Terminator: the only dynamic part.
            next_block, taken, next_ip = execute_terminator(block, call_stack)
            ips.append(template.term_ip)
            takens.append(1 if taken else 0)
            next_ips.append(next_ip)
            kinds.append(template.term_kind_code)
            nuops.append(template.term_nuops)
            snexts.append(template.term_snext)
            uops += template.term_nuops
            count += template.total_len

            if next_block is None:
                raise SimulationError(
                    f"execution fell off the program at block {block.bid} "
                    f"({block.terminator_kind.value} terminator)"
                )
            block = next_block

        return Trace.from_columns(
            ips, takens, next_ips, kinds, nuops, snexts, instr_table,
            name=program.name, suite=program.suite, seed=program.seed,
        )

    # ------------------------------------------------------------------

    def _execute_terminator(
        self,
        block: LayoutBlock,
        call_stack: List[int],
    ) -> Tuple[Optional[LayoutBlock], bool, int]:
        """Resolve the terminator; returns ``(next_block, taken, next_ip)``."""
        program = self.program
        kind = block.terminator_kind
        term = block.terminator

        if kind is TerminatorKind.COND:
            behavior = program.cond_behaviors[term.ip]
            taken = behavior.next_taken()
            bid = block.taken_bid if taken else block.fall_bid
            nxt = program.blocks[bid]
            return nxt, taken, nxt.entry_ip

        if kind is TerminatorKind.JUMP:
            nxt = program.blocks[block.taken_bid]
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.CALL:
            if len(call_stack) >= _MAX_CALL_DEPTH:
                raise SimulationError("call stack overflow: recursive call graph?")
            call_stack.append(block.fall_bid)
            nxt = program.blocks[block.taken_bid]
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.INDIRECT_CALL:
            if len(call_stack) >= _MAX_CALL_DEPTH:
                raise SimulationError("call stack overflow: recursive call graph?")
            behavior = program.indirect_behaviors[term.ip]
            target_ip = behavior.next_target()
            nxt = program.block_at_ip(target_ip)
            if nxt is None:
                raise SimulationError(
                    f"indirect call at {term.ip:#x} targets non-block {target_ip:#x}"
                )
            call_stack.append(block.fall_bid)
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.INDIRECT:
            behavior = program.indirect_behaviors[term.ip]
            target_ip = behavior.next_target()
            nxt = program.block_at_ip(target_ip)
            if nxt is None:
                raise SimulationError(
                    f"indirect jump at {term.ip:#x} targets non-block {target_ip:#x}"
                )
            return nxt, True, nxt.entry_ip

        if kind is TerminatorKind.RET:
            if not call_stack:
                raise SimulationError(
                    f"return at {term.ip:#x} with an empty call stack"
                )
            bid = call_stack.pop()
            nxt = program.blocks[bid]
            return nxt, True, nxt.entry_ip

        raise SimulationError(f"unhandled terminator kind {kind}")


def execute_program(program: Program, max_uops: int) -> Trace:
    """Convenience wrapper: run *program* for *max_uops* uops."""
    return TraceExecutor(program).run(max_uops=max_uops)
