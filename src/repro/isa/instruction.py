"""Instruction records and branch-kind taxonomy.

The taxonomy mirrors the distinctions the XBC cares about (paper §3.1):

- instructions that *never* end an extended block: plain ALU/memory ops
  and **unconditional direct jumps** (single-target redirections);
- instructions that end an XB because they can go to more than one
  place: conditional branches, indirect jumps/calls and returns;
- direct calls, which redirect to a single location but carry the
  call/return linkage the XRSB tracks (§3.5), so they end XBs too.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class InstrKind(enum.Enum):
    """Classification of an instruction for frontend purposes."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    COND_BRANCH = "cond_branch"
    JUMP = "jump"  # unconditional direct jump
    INDIRECT_JUMP = "indirect_jump"
    CALL = "call"  # direct call
    INDIRECT_CALL = "indirect_call"
    RETURN = "return"

    @property
    def is_branch(self) -> bool:
        """True for any control-transfer instruction."""
        return self not in (InstrKind.ALU, InstrKind.LOAD, InstrKind.STORE)

    @property
    def is_conditional(self) -> bool:
        """True only for conditional branches."""
        return self is InstrKind.COND_BRANCH

    @property
    def is_indirect(self) -> bool:
        """True for branches whose target comes from data, not the opcode."""
        return self in (
            InstrKind.INDIRECT_JUMP,
            InstrKind.INDIRECT_CALL,
            InstrKind.RETURN,
        )

    @property
    def is_call(self) -> bool:
        """True for direct and indirect calls."""
        return self in (InstrKind.CALL, InstrKind.INDIRECT_CALL)

    @property
    def ends_basic_block(self) -> bool:
        """True when the instruction terminates a classic basic block.

        Any jump ends a basic block — this is the "basic block" series of
        the paper's Figure 1.
        """
        return self.is_branch

    @property
    def ends_xb(self) -> bool:
        """True when the instruction ends an extended block.

        Unconditional direct jumps do *not* end XBs — that is the core
        definitional difference between an XB and a basic block.
        """
        if self is InstrKind.JUMP:
            return False
        return self.is_branch


# -- integer kind codes --------------------------------------------------------
# The columnar trace stores one small int per record instead of an enum
# member; the hot loops dispatch on these codes and index the boolean
# tables below, which is several times cheaper than enum attribute
# access (enum ``__hash__``/descriptor lookups dominate otherwise).

#: Fixed code assignment, stable across runs (definition order).
KIND_CODE: "dict[InstrKind, int]" = {kind: i for i, kind in enumerate(InstrKind)}

#: Inverse mapping: ``KINDS_BY_CODE[code] is kind``.
KINDS_BY_CODE: Tuple[InstrKind, ...] = tuple(InstrKind)

CODE_ALU = KIND_CODE[InstrKind.ALU]
CODE_LOAD = KIND_CODE[InstrKind.LOAD]
CODE_STORE = KIND_CODE[InstrKind.STORE]
CODE_COND_BRANCH = KIND_CODE[InstrKind.COND_BRANCH]
CODE_JUMP = KIND_CODE[InstrKind.JUMP]
CODE_INDIRECT_JUMP = KIND_CODE[InstrKind.INDIRECT_JUMP]
CODE_CALL = KIND_CODE[InstrKind.CALL]
CODE_INDIRECT_CALL = KIND_CODE[InstrKind.INDIRECT_CALL]
CODE_RETURN = KIND_CODE[InstrKind.RETURN]

#: Boolean lookup tables indexed by kind code (mirror the properties).
KIND_IS_BRANCH: Tuple[bool, ...] = tuple(k.is_branch for k in KINDS_BY_CODE)
KIND_IS_COND: Tuple[bool, ...] = tuple(k.is_conditional for k in KINDS_BY_CODE)
KIND_IS_INDIRECT: Tuple[bool, ...] = tuple(k.is_indirect for k in KINDS_BY_CODE)
KIND_IS_CALL: Tuple[bool, ...] = tuple(k.is_call for k in KINDS_BY_CODE)
KIND_ENDS_BB: Tuple[bool, ...] = tuple(k.ends_basic_block for k in KINDS_BY_CODE)
KIND_ENDS_XB: Tuple[bool, ...] = tuple(k.ends_xb for k in KINDS_BY_CODE)


@dataclass(frozen=True)
class Instruction:
    """One static instruction of the synthetic program.

    Attributes
    ----------
    ip:
        Byte address of the instruction.
    size:
        Encoded length in bytes (IA-32-like: 1..11 in our generator).
    kind:
        Branch classification, see :class:`InstrKind`.
    num_uops:
        How many uops the decoder produces for it (1..4).
    target:
        Statically-known target for direct branches/calls; ``None`` for
        non-branches and indirect branches.
    """

    ip: int
    size: int
    kind: InstrKind
    num_uops: int
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"instruction at {self.ip:#x} has size {self.size}")
        if not 1 <= self.num_uops <= 4:
            raise ValueError(
                f"instruction at {self.ip:#x} has {self.num_uops} uops; "
                "the decoder supports 1..4"
            )
        needs_target = self.kind in (
            InstrKind.COND_BRANCH,
            InstrKind.JUMP,
            InstrKind.CALL,
        )
        if needs_target and self.target is None:
            raise ValueError(f"{self.kind.value} at {self.ip:#x} lacks a target")

    @property
    def next_ip(self) -> int:
        """Address of the sequentially following instruction."""
        return self.ip + self.size

    @classmethod
    def trusted(
        cls,
        ip: int,
        size: int,
        kind: "InstrKind",
        num_uops: int,
        target: Optional[int] = None,
    ) -> "Instruction":
        """Construct without ``__post_init__`` validation.

        For generator-internal use on already-validated shapes: the
        frozen-dataclass ``__init__`` goes through ``object.__setattr__``
        per field, which dominates layout time at tens of thousands of
        instructions.
        """
        instr = object.__new__(cls)
        instr.__dict__.update(
            ip=ip, size=size, kind=kind, num_uops=num_uops, target=target,
        )
        return instr

    @property
    def end_ip(self) -> int:
        """Alias of :attr:`ip` — the identity the XBC indexes XBs by."""
        return self.ip

    def outcomes(self) -> Tuple[Optional[int], Optional[int]]:
        """``(taken_target, fallthrough)`` addresses where applicable."""
        fallthrough = None if self.kind in (
            InstrKind.JUMP,
            InstrKind.INDIRECT_JUMP,
            InstrKind.RETURN,
        ) else self.next_ip
        return self.target, fallthrough
