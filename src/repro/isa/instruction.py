"""Instruction records and branch-kind taxonomy.

The taxonomy mirrors the distinctions the XBC cares about (paper §3.1):

- instructions that *never* end an extended block: plain ALU/memory ops
  and **unconditional direct jumps** (single-target redirections);
- instructions that end an XB because they can go to more than one
  place: conditional branches, indirect jumps/calls and returns;
- direct calls, which redirect to a single location but carry the
  call/return linkage the XRSB tracks (§3.5), so they end XBs too.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class InstrKind(enum.Enum):
    """Classification of an instruction for frontend purposes."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    COND_BRANCH = "cond_branch"
    JUMP = "jump"  # unconditional direct jump
    INDIRECT_JUMP = "indirect_jump"
    CALL = "call"  # direct call
    INDIRECT_CALL = "indirect_call"
    RETURN = "return"

    @property
    def is_branch(self) -> bool:
        """True for any control-transfer instruction."""
        return self not in (InstrKind.ALU, InstrKind.LOAD, InstrKind.STORE)

    @property
    def is_conditional(self) -> bool:
        """True only for conditional branches."""
        return self is InstrKind.COND_BRANCH

    @property
    def is_indirect(self) -> bool:
        """True for branches whose target comes from data, not the opcode."""
        return self in (
            InstrKind.INDIRECT_JUMP,
            InstrKind.INDIRECT_CALL,
            InstrKind.RETURN,
        )

    @property
    def is_call(self) -> bool:
        """True for direct and indirect calls."""
        return self in (InstrKind.CALL, InstrKind.INDIRECT_CALL)

    @property
    def ends_basic_block(self) -> bool:
        """True when the instruction terminates a classic basic block.

        Any jump ends a basic block — this is the "basic block" series of
        the paper's Figure 1.
        """
        return self.is_branch

    @property
    def ends_xb(self) -> bool:
        """True when the instruction ends an extended block.

        Unconditional direct jumps do *not* end XBs — that is the core
        definitional difference between an XB and a basic block.
        """
        if self is InstrKind.JUMP:
            return False
        return self.is_branch


@dataclass(frozen=True)
class Instruction:
    """One static instruction of the synthetic program.

    Attributes
    ----------
    ip:
        Byte address of the instruction.
    size:
        Encoded length in bytes (IA-32-like: 1..11 in our generator).
    kind:
        Branch classification, see :class:`InstrKind`.
    num_uops:
        How many uops the decoder produces for it (1..4).
    target:
        Statically-known target for direct branches/calls; ``None`` for
        non-branches and indirect branches.
    """

    ip: int
    size: int
    kind: InstrKind
    num_uops: int
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"instruction at {self.ip:#x} has size {self.size}")
        if not 1 <= self.num_uops <= 4:
            raise ValueError(
                f"instruction at {self.ip:#x} has {self.num_uops} uops; "
                "the decoder supports 1..4"
            )
        needs_target = self.kind in (
            InstrKind.COND_BRANCH,
            InstrKind.JUMP,
            InstrKind.CALL,
        )
        if needs_target and self.target is None:
            raise ValueError(f"{self.kind.value} at {self.ip:#x} lacks a target")

    @property
    def next_ip(self) -> int:
        """Address of the sequentially following instruction."""
        return self.ip + self.size

    @property
    def end_ip(self) -> int:
        """Alias of :attr:`ip` — the identity the XBC indexes XBs by."""
        return self.ip

    def outcomes(self) -> Tuple[Optional[int], Optional[int]]:
        """``(taken_target, fallthrough)`` addresses where applicable."""
        fallthrough = None if self.kind in (
            InstrKind.JUMP,
            InstrKind.INDIRECT_JUMP,
            InstrKind.RETURN,
        ) else self.next_ip
        return self.target, fallthrough
