"""Uop identity model.

A uop is identified by the instruction it decodes from plus its index
within that instruction's decode sequence.  The simulator packs this
identity into a single integer *uid* (``ip * 16 + index``) because the
cache models store and compare millions of uops and a plain ``int`` is
the cheapest hashable identity Python offers.  The richer
:class:`Uop` dataclass exists for API clarity in tests and examples.

An IA-32 instruction decodes into at most a handful of uops; we reserve
4 bits of index space, comfortably above the 4-uop ceiling the decoder
enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Number of index bits packed into a uid (16 slots per instruction).
UID_INDEX_BITS = 4
UID_INDEX_MASK = (1 << UID_INDEX_BITS) - 1


def uop_uid(ip: int, index: int) -> int:
    """Pack an ``(instruction ip, uop index)`` pair into one integer."""
    return (ip << UID_INDEX_BITS) | index


def uop_uid_ip(uid: int) -> int:
    """Instruction IP encoded in *uid*."""
    return uid >> UID_INDEX_BITS


def uop_uid_index(uid: int) -> int:
    """Uop index within its instruction encoded in *uid*."""
    return uid & UID_INDEX_MASK


def uops_of(ip: int, count: int) -> List[int]:
    """Uids of the *count* uops of the instruction at *ip*, in order."""
    base = ip << UID_INDEX_BITS
    return [base | index for index in range(count)]


@dataclass(frozen=True)
class Uop:
    """A decoded micro-operation, identified by parent IP and index."""

    ip: int
    index: int

    @property
    def uid(self) -> int:
        """Packed integer identity (see :func:`uop_uid`)."""
        return uop_uid(self.ip, self.index)

    @classmethod
    def from_uid(cls, uid: int) -> "Uop":
        """Rebuild the dataclass form from a packed uid."""
        return cls(ip=uop_uid_ip(uid), index=uop_uid_index(uid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Uop(ip={self.ip:#x}, index={self.index})"
