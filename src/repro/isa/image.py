"""Program image: the static IP → instruction map.

Both cache models and the trace executor resolve instruction addresses
through a :class:`ProgramImage`.  It is the synthetic equivalent of the
text segment: a dense, immutable address space of instructions laid out
by the program generator.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.isa.instruction import Instruction


class ProgramImage:
    """Immutable map from instruction address to instruction.

    Instructions must be added in strictly increasing, non-overlapping
    address order; :meth:`freeze` seals the image.
    """

    def __init__(self) -> None:
        self._by_ip: Dict[int, Instruction] = {}
        self._ips: List[int] = []
        self._frozen = False
        self._end_ip = 0

    def add(self, instr: Instruction) -> None:
        """Append an instruction at the current layout frontier."""
        if self._frozen:
            raise RuntimeError("cannot add instructions to a frozen image")
        if instr.ip < self._end_ip:
            raise ValueError(
                f"instruction at {instr.ip:#x} overlaps previous layout "
                f"(frontier {self._end_ip:#x})"
            )
        self._by_ip[instr.ip] = instr
        self._ips.append(instr.ip)
        self._end_ip = instr.ip + instr.size

    def freeze(self) -> "ProgramImage":
        """Seal the image; returns self for chaining."""
        self._frozen = True
        return self

    def __len__(self) -> int:
        return len(self._by_ip)

    def __contains__(self, ip: int) -> bool:
        return ip in self._by_ip

    def __iter__(self) -> Iterator[Instruction]:
        for ip in self._ips:
            yield self._by_ip[ip]

    def fetch(self, ip: int) -> Instruction:
        """Instruction at exactly *ip*; raises ``KeyError`` when absent.

        A ``KeyError`` here means control flow reached an address that
        is not an instruction boundary — always a generator or simulator
        bug, so it is allowed to propagate loudly.
        """
        return self._by_ip[ip]

    def get(self, ip: int) -> Optional[Instruction]:
        """Instruction at *ip* or ``None``."""
        return self._by_ip.get(ip)

    @property
    def lowest_ip(self) -> int:
        """Address of the first instruction."""
        if not self._ips:
            raise ValueError("empty program image")
        return self._ips[0]

    @property
    def end_ip(self) -> int:
        """One past the last instruction byte."""
        return self._end_ip

    @property
    def total_bytes(self) -> int:
        """Static code footprint in bytes."""
        if not self._ips:
            return 0
        return self._end_ip - self._ips[0]

    @property
    def total_uops(self) -> int:
        """Static code footprint in uops (the paper's capacity unit)."""
        return sum(instr.num_uops for instr in self._by_ip.values())
