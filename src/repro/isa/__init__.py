"""Synthetic IA-32-like instruction set.

The frontend structures in the paper never interpret instruction
semantics; they care about instruction *addresses*, *byte lengths*,
*branch kinds* and the number of *uops* each instruction decodes into.
This package models exactly that surface: :class:`~repro.isa.instruction.Instruction`
records, uop identities (:mod:`repro.isa.uop`), a :class:`~repro.isa.decoder.Decoder`
and the :class:`~repro.isa.image.ProgramImage` address map.
"""

from repro.isa.instruction import Instruction, InstrKind
from repro.isa.uop import Uop, uop_uid, uop_uid_ip, uop_uid_index, uops_of
from repro.isa.decoder import Decoder, DecodedInstr
from repro.isa.image import ProgramImage

__all__ = [
    "Instruction",
    "InstrKind",
    "Uop",
    "uop_uid",
    "uop_uid_ip",
    "uop_uid_index",
    "uops_of",
    "Decoder",
    "DecodedInstr",
    "ProgramImage",
]
