"""Instruction-to-uop decoder.

Real IA-32 decode is the expensive, variable-latency stage the decoded
caches of §2.2–2.3 exist to avoid.  Our synthetic decoder is
functionally trivial — the uop count is a property of the instruction —
but it is a real pipeline stage in the simulator: build-mode fetch pays
its width limits and its latency, exactly the cost the XBC and TC skip
while in delivery mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.instruction import Instruction
from repro.isa.uop import uops_of


@dataclass(frozen=True)
class DecodedInstr:
    """The decoder's output for one instruction."""

    instr: Instruction
    uops: List[int]  # packed uop uids, in program order

    @property
    def num_uops(self) -> int:
        """Number of uops produced."""
        return len(self.uops)


class Decoder:
    """Translates instructions into uop sequences.

    Parameters
    ----------
    width:
        Maximum instructions decoded per cycle (build-mode limit).
    latency:
        Pipeline depth in cycles between IC fetch and uop availability;
        charged by the frontends when refilling after a re-steer.
    """

    def __init__(self, width: int = 4, latency: int = 3) -> None:
        if width < 1:
            raise ValueError(f"decoder width must be >= 1, got {width}")
        if latency < 0:
            raise ValueError(f"decoder latency must be >= 0, got {latency}")
        self.width = width
        self.latency = latency
        self.decoded_instructions = 0
        self.decoded_uops = 0

    def decode(self, instr: Instruction) -> DecodedInstr:
        """Decode a single instruction, updating throughput counters."""
        uops = uops_of(instr.ip, instr.num_uops)
        self.decoded_instructions += 1
        self.decoded_uops += len(uops)
        return DecodedInstr(instr=instr, uops=uops)

    def decode_group(self, instrs: List[Instruction]) -> List[DecodedInstr]:
        """Decode up to :attr:`width` instructions as one cycle's group.

        Raises ``ValueError`` when the caller exceeds the decode width —
        the frontends are responsible for honouring the limit, and a
        violation means a frontend bug, not a workload property.
        """
        if len(instrs) > self.width:
            raise ValueError(
                f"decode group of {len(instrs)} exceeds width {self.width}"
            )
        return [self.decode(instr) for instr in instrs]

    def reset_counters(self) -> None:
        """Zero the throughput counters (between simulation runs)."""
        self.decoded_instructions = 0
        self.decoded_uops = 0
