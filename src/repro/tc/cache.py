"""The trace-cache storage array.

Set-associative, LRU, tagged by trace starting IP.  There is **no path
associativity** (§2.3): the lookup can return at most one line per
start IP, so building a different path from the same start replaces the
existing line — the thrashing behaviour the paper attributes to the
academic TC model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.bitutils import log2_exact
from repro.tc.config import TcConfig
from repro.tc.trace_line import TraceLine


class _TcSet:
    __slots__ = ("lines", "stamps")

    def __init__(self) -> None:
        # key: start_ip, or (start_ip, path signature) with path
        # associativity enabled
        self.lines: Dict[object, TraceLine] = {}
        self.stamps: Dict[object, int] = {}


class TraceCache:
    """Data + tag array of the trace cache."""

    def __init__(self, config: TcConfig) -> None:
        config.validate()
        self.config = config
        self.num_sets = config.num_sets
        log2_exact(self.num_sets)
        self._set_mask = self.num_sets - 1
        self._sets: List[_TcSet] = [_TcSet() for _ in range(self.num_sets)]
        self._clock = 0
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.replacements = 0
        self.same_path_refreshes = 0

    def _set_for(self, start_ip: int) -> _TcSet:
        return self._sets[(start_ip >> 1) & self._set_mask]

    def lookup(self, start_ip: int) -> Optional[TraceLine]:
        """Line starting at *start_ip*, or ``None``; hit updates LRU.

        With path associativity, returns the most recent same-start
        line; use :meth:`lookup_all` to let the predictor choose.
        """
        candidates = self.lookup_all(start_ip)
        return candidates[0] if candidates else None

    def lookup_all(self, start_ip: int) -> List[TraceLine]:
        """All lines starting at *start_ip*, most recently used first."""
        self.lookups += 1
        tc_set = self._set_for(start_ip)
        if not self.config.path_associativity:
            line = tc_set.lines.get(start_ip)
            found = [line] if line is not None else []
        else:
            keyed = [
                (tc_set.stamps[key], line)
                for key, line in tc_set.lines.items()
                if line.start_ip == start_ip
            ]
            keyed.sort(reverse=True, key=lambda pair: pair[0])
            found = [line for _stamp, line in keyed]
        if found:
            self.hits += 1
            self._clock += 1
            tc_set.stamps[self._key_for(found[0])] = self._clock
        return found

    def _key_for(self, line: TraceLine) -> object:
        if self.config.path_associativity:
            return (line.start_ip, line.path_signature())
        return line.start_ip

    def touch(self, line: TraceLine) -> None:
        """LRU-refresh a specific line (after predictor selection)."""
        tc_set = self._set_for(line.start_ip)
        key = self._key_for(line)
        if key in tc_set.lines:
            self._clock += 1
            tc_set.stamps[key] = self._clock

    def contains(self, start_ip: int) -> bool:
        """Presence probe without LRU side effects."""
        tc_set = self._set_for(start_ip)
        if not self.config.path_associativity:
            return start_ip in tc_set.lines
        return any(
            line.start_ip == start_ip for line in tc_set.lines.values()
        )

    def insert(self, line: TraceLine) -> None:
        """Install a built trace.

        An identical line (same path) only refreshes LRU.  Without path
        associativity a same-start different-path line is overwritten in
        place; with it ([Jaco97]), the new path takes its own way and
        plain LRU arbitrates the set.
        """
        tc_set = self._set_for(line.start_ip)
        self._clock += 1
        key = self._key_for(line)
        existing = tc_set.lines.get(key)
        if existing is not None:
            if existing.same_path_as(line):
                self.same_path_refreshes += 1
            else:
                self.replacements += 1
                tc_set.lines[key] = line
            tc_set.stamps[key] = self._clock
            return
        if len(tc_set.lines) >= self.config.assoc:
            victim = min(tc_set.stamps, key=tc_set.stamps.get)
            del tc_set.lines[victim]
            del tc_set.stamps[victim]
            self.replacements += 1
        tc_set.lines[key] = line
        tc_set.stamps[key] = self._clock
        self.inserts += 1

    # ------------------------------------------------------------------
    # audits (used by tests and the redundancy analysis)
    # ------------------------------------------------------------------

    def resident_lines(self) -> List[TraceLine]:
        """All lines currently stored."""
        lines: List[TraceLine] = []
        for tc_set in self._sets:
            lines.extend(tc_set.lines.values())
        return lines

    def stored_uops(self) -> int:
        """Total uops currently resident (fragmentation audit)."""
        return sum(line.total_uops for line in self.resident_lines())

    def redundancy(self) -> float:
        """Average number of copies of each resident uop (>= 1.0).

        The paper defines instruction redundancy as the average number
        of times each uop appears in the TC; this audit computes it over
        the current contents.
        """
        copies: Dict[int, int] = {}
        for line in self.resident_lines():
            for entry in line.entries:
                for index in range(entry.instr.num_uops):
                    key = (entry.instr.ip << 4) | index
                    copies[key] = copies.get(key, 0) + 1
        if not copies:
            return 1.0
        return sum(copies.values()) / len(copies)
