"""Trace Cache frontend — the paper's main comparator (§2.3, §4).

The model follows the academic TC the paper simulates against
[Rote96, Frie97]: a 4-way set-associative cache where each line holds a
single trace of up to 16 uops with at most 3 conditional branches,
indexed and tagged by the trace's *starting* IP (single-entry,
multiple-exit, no path associativity), filled during build mode and
consumed in delivery mode with up to three gshare predictions per
cycle.
"""

from repro.tc.config import TcConfig
from repro.tc.trace_line import TraceLine, TraceEntry
from repro.tc.cache import TraceCache
from repro.tc.fill import TcFillUnit
from repro.tc.frontend import TcFrontend

__all__ = [
    "TcConfig",
    "TraceLine",
    "TraceEntry",
    "TraceCache",
    "TcFillUnit",
    "TcFrontend",
]
