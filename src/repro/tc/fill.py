"""Trace-cache fill unit.

Accumulates the uops flowing past during build mode into trace lines.
End conditions (§2.3 / [Rote96]): the 16-uop line quota (instructions
are atomic — one that does not fit starts the next trace), the third
conditional branch, and instructions with multiple targets that cannot
be embedded mid-trace (indirect jumps/calls and returns).
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.instruction import Instruction, InstrKind
from repro.tc.config import TcConfig
from repro.tc.trace_line import TraceEntry, TraceLine

#: Instruction kinds that terminate a trace when appended.
_TRACE_ENDERS = (
    InstrKind.INDIRECT_JUMP,
    InstrKind.INDIRECT_CALL,
    InstrKind.RETURN,
)


class TcFillUnit:
    """Builds trace lines from the dynamic instruction stream."""

    def __init__(self, config: TcConfig) -> None:
        self.config = config
        self._pending: List[TraceEntry] = []
        self._pending_uops = 0
        self._pending_conds = 0
        self.completed_traces = 0

    @property
    def pending_instructions(self) -> int:
        """Instructions buffered toward the next trace."""
        return len(self._pending)

    def abandon(self) -> None:
        """Drop the partially built trace (on re-steer into delivery)."""
        self._pending.clear()
        self._pending_uops = 0
        self._pending_conds = 0

    def feed(self, instr: Instruction, taken: bool) -> List[TraceLine]:
        """Add one executed instruction; returns completed lines.

        Usually zero or one line completes; two complete when a quota
        cut and an end condition land on the same instruction (a
        many-uop indirect branch that does not fit the current line).
        """
        config = self.config

        completed: List[TraceLine] = []
        if (
            self._pending
            and self._pending_uops + instr.num_uops > config.line_uops
        ):
            # Quota cut: the instruction starts the next trace.
            line = self._finalize()
            if line is not None:
                completed.append(line)

        self._pending.append(TraceEntry(instr=instr, taken=taken))
        self._pending_uops += instr.num_uops
        if instr.kind is InstrKind.COND_BRANCH:
            self._pending_conds += 1

        ends = (
            instr.kind in _TRACE_ENDERS
            or self._pending_uops >= config.line_uops
            or self._pending_conds >= config.max_cond_branches
        )
        if ends:
            line = self._finalize()
            if line is not None:
                completed.append(line)
        return completed

    def flush(self) -> Optional[TraceLine]:
        """Complete the pending trace as-is (end of stream / analyses)."""
        return self._finalize()

    def _finalize(self) -> Optional[TraceLine]:
        if not self._pending:
            return None
        line = TraceLine(self._pending)
        self._pending = []
        self._pending_uops = 0
        self._pending_conds = 0
        self.completed_traces += 1
        return line
