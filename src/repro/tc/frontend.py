"""Trace-cache frontend: build/delivery mode state machine.

Delivery mode looks the next fetch IP up in the trace cache and
consumes the stored trace against the actual path: uops are delivered
up to the first point where either the recorded path or the predicted
path diverges from the actual one (partial hits, as in [Frie97]).
Build mode runs the shared IC/BTB/decode engine and feeds the fill
unit; once a trace completes and the next fetch IP hits in the cache,
the frontend switches back to delivery.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import InstrKind
from repro.tc.cache import TraceCache
from repro.tc.config import TcConfig
from repro.tc.fill import TcFillUnit
from repro.tc.trace_line import TraceLine
from repro.trace.record import Trace


class TcFrontend(FrontendModel):
    """The paper's §4 trace-cache configuration."""

    name = "tc"

    def __init__(
        self,
        config: Optional[FrontendConfig] = None,
        tc_config: Optional[TcConfig] = None,
    ) -> None:
        super().__init__(config if config is not None else FrontendConfig())
        tc_config = tc_config if tc_config is not None else TcConfig()
        tc_config.validate()
        self.tc_config = tc_config

    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> FrontendStats:
        """Simulate the trace through the trace-cache frontend."""
        config = self.config
        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        flow = UopFlow(config, stats)

        gshare = GsharePredictor(config.gshare_history_bits, config.gshare_entries)
        rsb: ReturnStackBuffer = ReturnStackBuffer(config.rsb_depth)
        indirect: IndirectPredictor = IndirectPredictor(
            config.indirect_entries, config.indirect_history_bits
        )
        engine = BuildEngine(
            config=config,
            stats=stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=gshare,
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=rsb,
            indirect=indirect,
        )
        cache = TraceCache(self.tc_config)
        fill = TcFillUnit(self.tc_config)

        ips = trace.ips
        takens = trace.takens
        instr_table = trace.instr_table
        total = len(trace)
        pos = 0
        delivery = False
        max_build_uops = 4 * config.decode_width

        while pos < total:
            stats.cycles += 1
            flow.drain()

            if delivery:
                stats.delivery_cycles += 1
                if not flow.can_accept(self.tc_config.line_uops):
                    continue
                stats.structure_lookups += 1
                line = self._select_line(
                    cache, cache.lookup_all(ips[pos]), gshare
                )
                if line is None:
                    delivery = False
                    stats.switches_to_build += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)
                    continue
                stats.structure_hits += 1
                stats.structure_fetch_cycles += 1
                uops, pos = self._consume_line(
                    line, trace, pos, stats, gshare, rsb, indirect
                )
                stats.uops_from_structure += uops
                flow.push(uops)
            else:
                stats.build_cycles += 1
                if not flow.can_accept(max_build_uops):
                    continue
                pos, cycle = engine.fetch_cycle(trace, pos)
                stats.uops_from_ic += cycle.uops
                flow.push(cycle.uops)
                for cause, cycles in cycle.penalties.items():
                    stats.add_penalty(cause, cycles)
                completed = False
                for i in range(cycle.start, cycle.end):
                    for line in fill.feed(instr_table[ips[i]], bool(takens[i])):
                        cache.insert(line)
                        stats.blocks_built += 1
                        completed = True
                if completed and pos < total and cache.contains(ips[pos]):
                    delivery = True
                    fill.abandon()
                    stats.switches_to_delivery += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)

        flow.drain_all()
        stats.extra["tc_redundancy_x1000"] = int(cache.redundancy() * 1000)
        stats.extra["tc_resident_uops"] = cache.stored_uops()
        stats.verify_conservation(trace.total_uops)
        return stats

    # ------------------------------------------------------------------

    def _select_line(self, cache, candidates, gshare):
        """Pick among same-start traces by predicted path ([Jaco97]).

        Without path associativity there is at most one candidate.  With
        it, the line whose embedded directions the predictor agrees with
        longest wins (predictions are peeked, not consumed — consumption
        happens when the line is walked against the actual path).
        """
        if len(candidates) <= 1:
            return candidates[0] if candidates else None
        best = None
        best_score = -1
        for line in candidates:
            score = 0
            for entry in line.entries:
                if entry.instr.kind is InstrKind.COND_BRANCH:
                    if gshare.predict(entry.instr.ip) != entry.taken:
                        break
                    score += 1
            if score > best_score:
                best = line
                best_score = score
        cache.touch(best)
        return best

    def _consume_line(
        self,
        line: TraceLine,
        trace: Trace,
        pos: int,
        stats: FrontendStats,
        gshare: GsharePredictor,
        rsb: ReturnStackBuffer,
        indirect: IndirectPredictor,
    ) -> Tuple[int, int]:
        """Deliver the line against the actual path.

        Returns ``(correct-path uops delivered, new trace position)``.
        Delivery stops at the first conditional branch where the
        recorded path or the prediction leaves the actual path.
        """
        config = self.config
        ips = trace.ips
        takens = trace.takens
        next_ips = trace.next_ips
        total = len(ips)
        uops = 0
        consumed = 0
        for entry in line.entries:
            index = pos + consumed
            if index >= total:
                break
            instr = entry.instr
            if ips[index] != instr.ip:
                break  # stale line contents relative to the actual path
            consumed += 1
            uops += instr.num_uops
            kind = instr.kind

            if kind is InstrKind.COND_BRANCH:
                taken = bool(takens[index])
                stats.cond_predictions += 1
                correct = gshare.update(instr.ip, taken)
                if not correct:
                    stats.cond_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
                    break
                if taken != entry.taken:
                    break  # partial hit: recorded path leaves the actual path
            elif kind is InstrKind.CALL:
                rsb.push(instr.next_ip)
            elif kind is InstrKind.INDIRECT_CALL:
                rsb.push(instr.next_ip)
                stats.indirect_predictions += 1
                nxt = next_ips[index]
                if not indirect.update(instr.ip, nxt, nxt):
                    stats.indirect_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
            elif kind is InstrKind.INDIRECT_JUMP:
                stats.indirect_predictions += 1
                nxt = next_ips[index]
                if not indirect.update(instr.ip, nxt, nxt):
                    stats.indirect_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
            elif kind is InstrKind.RETURN:
                stats.return_predictions += 1
                if rsb.pop() != next_ips[index]:
                    stats.return_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
        return uops, pos + consumed
