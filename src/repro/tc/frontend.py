"""Trace-cache frontend: build/delivery mode state machine.

Delivery mode looks the next fetch IP up in the trace cache and
consumes the stored trace against the actual path: uops are delivered
up to the first point where either the recorded path or the predicted
path diverges from the actual one (partial hits, as in [Frie97]).
Build mode runs the shared IC/BTB/decode engine and feeds the fill
unit; once a trace completes and the next fetch IP hits in the cache,
the frontend switches back to delivery.

Two implementations share this class: ``_run_flat`` (default for the
§4 baseline, which has path associativity OFF) is one fused loop over
the columnar trace arrays with inlined predictors and tuple-payload
trace lines, plus an XBC-style queue-stall fast-forward.
``_run_reference`` is the original object-per-cycle code, kept behind
``REPRO_REFERENCE_FRONTEND=1`` as the behavioural oracle and used
unconditionally for path-associative configurations (predictor-steered
way selection stays on the object path).  Both produce bit-identical
:class:`FrontendStats`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine, reference_frontends_enabled
from repro.frontend.config import FrontendConfig
from repro.frontend.flat_engine import make_flat_predictors
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import (
    CODE_CALL,
    CODE_COND_BRANCH,
    CODE_INDIRECT_CALL,
    CODE_INDIRECT_JUMP,
    CODE_JUMP,
    CODE_RETURN,
    InstrKind,
)
from repro.tc.cache import TraceCache
from repro.tc.config import TcConfig
from repro.tc.fill import TcFillUnit
from repro.tc.trace_line import TraceLine
from repro.trace.record import Trace


class TcFrontend(FrontendModel):
    """The paper's §4 trace-cache configuration."""

    name = "tc"

    def __init__(
        self,
        config: Optional[FrontendConfig] = None,
        tc_config: Optional[TcConfig] = None,
    ) -> None:
        super().__init__(config if config is not None else FrontendConfig())
        tc_config = tc_config if tc_config is not None else TcConfig()
        tc_config.validate()
        self.tc_config = tc_config

    def run(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        """Simulate the trace through the trace-cache frontend."""
        if reference_frontends_enabled() or self.tc_config.path_associativity:
            return self._run_reference(trace, cycle_log)
        return self._run_flat(trace, cycle_log)

    # ------------------------------------------------------------------
    # flat path (path associativity off — the §4 baseline)
    # ------------------------------------------------------------------

    def _run_flat(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        config = self.config
        tc = self.tc_config
        ips, takens, next_ips, kinds, nuops, snexts = trace.hot_columns()
        total = len(ips)
        fp = make_flat_predictors(config)

        # predictors, hoisted
        g_counters = fp.g_counters
        g_imask = fp.g_imask
        g_hmask = fp.g_hmask
        g_hist = 0
        b_tags = fp.b_tags
        b_targets = fp.b_targets
        b_stamps = fp.b_stamps
        b_assoc = fp.b_assoc
        b_set_mask = fp.b_set_mask
        b_clock = 0
        r_slots = fp.r_slots
        r_depth = fp.r_depth
        r_top = 0
        r_count = 0
        i_tags = fp.i_tags
        i_targets = fp.i_targets
        i_imask = fp.i_imask
        i_hmask = fp.i_hmask
        i_hist = 0
        ic_sets = fp.ic_sets
        ic_set_mask = fp.ic_set_mask
        ic_offset = fp.ic_offset_bits
        icache_assoc = fp.ic_assoc
        ic_clock = 0

        # trace-cache store: set -> {start_ip: (entries, uops, stamp)}
        # with entry = (ip, taken, kind, nuops, snext).  Static fields
        # are functions of ip, so entries-tuple equality is exactly the
        # reference's path-signature equality.
        sets: List[dict] = [{} for _ in range(tc.num_sets)]
        set_mask = tc.num_sets - 1
        tc_assoc = tc.assoc
        line_quota = tc.line_uops
        max_conds = tc.max_cond_branches
        clock = 0

        # config scalars
        width = config.renamer_width
        depth = config.uop_queue_depth
        decode_width = config.decode_width
        fetch_block = config.fetch_block_bytes
        ic_lat = config.ic_miss_latency
        misp_pen = config.mispredict_penalty
        bubble = config.taken_branch_bubble
        btb_pen = config.btb_miss_penalty
        mode_pen = config.mode_switch_penalty
        max_build = 4 * decode_width
        branch_floor = CODE_COND_BRANCH
        c_jump = CODE_JUMP
        c_ijump = CODE_INDIRECT_JUMP
        c_call = CODE_CALL
        c_icall = CODE_INDIRECT_CALL
        c_ret = CODE_RETURN

        # counters
        cycles = 0
        build_cycles = 0
        delivery_cycles = 0
        retired = 0
        occ = 0
        from_ic = 0
        from_structure = 0
        fetch_cycles_s = 0
        s_lookups = s_hits = 0
        blocks_built = 0
        sw_deliver = sw_build = 0
        cond_pred = cond_misp = ind_pred = ind_misp = 0
        ret_pred = ret_misp = 0
        ic_lookups = ic_misses = 0
        pen: dict = {}
        pos = 0
        delivery = False
        pending: list = []          # [(ip, taken, kind, nu, snext), ...]
        pending_uops = 0
        pending_conds = 0
        logging = cycle_log is not None

        def finalize() -> bool:
            """Install the pending trace (oracle: TcFillUnit._finalize
            + TraceCache.insert); returns True when a line completed."""
            nonlocal pending, pending_uops, pending_conds, clock, blocks_built
            if not pending:
                return False
            start_ip = pending[0][0]
            entries = tuple(pending)
            bucket = sets[(start_ip >> 1) & set_mask]
            clock += 1
            existing = bucket.get(start_ip)
            if existing is not None:
                if existing[0] == entries:
                    bucket[start_ip] = (existing[0], existing[1], clock)
                else:
                    bucket[start_ip] = (entries, pending_uops, clock)
            else:
                if len(bucket) >= tc_assoc:
                    victim = min(bucket, key=lambda k: bucket[k][2])
                    del bucket[victim]
                bucket[start_ip] = (entries, pending_uops, clock)
            blocks_built += 1
            pending = []
            pending_uops = 0
            pending_conds = 0
            return True

        while pos < total:
            cycles += 1
            if occ:
                t = occ if occ < width else width
                occ -= t
                retired += t

            if delivery:
                delivery_cycles += 1
                room = depth - occ
                if room < line_quota:
                    if logging:
                        cycle_log.append(0)
                        continue
                    # Queue-stall fast-forward: cycles until a line
                    # fits are pure full-width drains (cycle-exact,
                    # see the XBC delivery loop).
                    extra = (line_quota - room + width - 1) // width - 1
                    if extra > 0 and occ >= extra * width:
                        cycles += extra
                        retired += extra * width
                        occ -= extra * width
                        delivery_cycles += extra
                    continue
                s_lookups += 1
                ip0 = ips[pos]
                bucket = sets[(ip0 >> 1) & set_mask]
                entry = bucket.get(ip0)
                if entry is None:
                    delivery = False
                    sw_build += 1
                    if mode_pen > 0:
                        cycles += mode_pen
                        pen["mode_switch"] = pen.get("mode_switch", 0) + mode_pen
                    if logging:
                        cycle_log.append(0)
                    continue
                clock += 1
                bucket[ip0] = (entry[0], entry[1], clock)
                s_hits += 1
                fetch_cycles_s += 1
                # ---- consume the line against the actual path ----
                uops = 0
                for ip, rec_taken, k, nu, snext in entry[0]:
                    if pos >= total or ips[pos] != ip:
                        break  # stale line contents vs the actual path
                    i = pos
                    pos += 1
                    uops += nu
                    if k < branch_floor:
                        continue
                    if k == branch_floor:  # conditional
                        tk = takens[i]
                        cond_pred += 1
                        gi = ((ip >> 1) ^ g_hist) & g_imask
                        c = g_counters[gi]
                        if tk:
                            if c < 3:
                                g_counters[gi] = c + 1
                            g_hist = ((g_hist << 1) | 1) & g_hmask
                            if c < 2:
                                cond_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                                break
                        else:
                            if c > 0:
                                g_counters[gi] = c - 1
                            g_hist = (g_hist << 1) & g_hmask
                            if c >= 2:
                                cond_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                                break
                        if tk != rec_taken:
                            break  # partial hit: recorded path diverges
                    elif k == c_call:
                        if r_count < r_depth:
                            r_count += 1
                        r_slots[r_top] = snext
                        r_top += 1
                        if r_top == r_depth:
                            r_top = 0
                    elif k == c_icall or k == c_ijump:
                        if k == c_icall:
                            if r_count < r_depth:
                                r_count += 1
                            r_slots[r_top] = snext
                            r_top += 1
                            if r_top == r_depth:
                                r_top = 0
                        ind_pred += 1
                        nxt = next_ips[i]
                        ii = ((ip >> 1) ^ (i_hist << 2)) & i_imask
                        hit = i_tags[ii] == ip and i_targets[ii] == nxt
                        i_tags[ii] = ip
                        i_targets[ii] = nxt
                        mixed = (nxt ^ (nxt >> 4) ^ (nxt >> 9)) & 0xF
                        i_hist = ((i_hist << 2) ^ mixed) & i_hmask
                        if not hit:
                            ind_misp += 1
                            if misp_pen > 0:
                                cycles += misp_pen
                                pen["mispredict"] = (
                                    pen.get("mispredict", 0) + misp_pen
                                )
                    elif k == c_ret:
                        ret_pred += 1
                        if r_count == 0:
                            predicted = -1
                        else:
                            r_top -= 1
                            if r_top < 0:
                                r_top = r_depth - 1
                            r_count -= 1
                            predicted = r_slots[r_top]
                        if predicted != next_ips[i]:
                            ret_misp += 1
                            if misp_pen > 0:
                                cycles += misp_pen
                                pen["mispredict"] = (
                                    pen.get("mispredict", 0) + misp_pen
                                )
                    # direct JUMP: embedded target, no action
                from_structure += uops
                occ += uops
                if logging:
                    cycle_log.append(uops)
            else:
                build_cycles += 1
                room = depth - occ
                if room < max_build:
                    if logging:
                        cycle_log.append(0)
                        continue
                    extra = (max_build - room + width - 1) // width - 1
                    if extra > 0 and occ >= extra * width:
                        cycles += extra
                        retired += extra * width
                        occ -= extra * width
                        build_cycles += extra
                    continue
                # ---- one build fetch cycle, inlined (oracle:
                # BuildEngine.fetch_cycle) ----
                start = pos
                ip = ips[pos]
                ic_lookups += 1
                line_addr = ip >> ic_offset
                iset = ic_sets[line_addr & ic_set_mask]
                ic_clock += 1
                if line_addr in iset:
                    iset[line_addr] = ic_clock
                else:
                    ic_misses += 1
                    if len(iset) >= icache_assoc:
                        del iset[min(iset, key=iset.get)]
                    iset[line_addr] = ic_clock
                    if ic_lat > 0:
                        cycles += ic_lat
                        pen["ic_miss"] = pen.get("ic_miss", 0) + ic_lat
                window_start = ip & ~(fetch_block - 1)
                window_end = window_start + fetch_block
                limit = pos + decode_width
                if limit > total:
                    limit = total
                cuops = 0
                while pos < limit:
                    ip = ips[pos]
                    if ip < window_start or ip >= window_end:
                        break
                    cuops += nuops[pos]
                    pos += 1
                    k = kinds[pos - 1]
                    if k >= branch_floor:
                        i = pos - 1
                        if k == branch_floor:  # conditional
                            tk = takens[i]
                            cond_pred += 1
                            gi = ((ip >> 1) ^ g_hist) & g_imask
                            c = g_counters[gi]
                            if tk:
                                if c < 3:
                                    g_counters[gi] = c + 1
                                g_hist = ((g_hist << 1) | 1) & g_hmask
                                if c < 2:
                                    cond_misp += 1
                                    if misp_pen > 0:
                                        cycles += misp_pen
                                        pen["mispredict"] = (
                                            pen.get("mispredict", 0) + misp_pen
                                        )
                                    break
                                # correct taken: redirect via the BTB
                                tgt = next_ips[i]
                                base = ((ip >> 1) & b_set_mask) * b_assoc
                                found = -1
                                for slot in range(base, base + b_assoc):
                                    if b_tags[slot] == ip:
                                        found = slot
                                        break
                                if found >= 0:
                                    b_clock += 1
                                    b_stamps[found] = b_clock
                                    if b_targets[found] == tgt:
                                        if bubble > 0:
                                            cycles += bubble
                                            pen["redirect"] = (
                                                pen.get("redirect", 0) + bubble
                                            )
                                    else:
                                        if btb_pen > 0:
                                            cycles += btb_pen
                                            pen["btb_miss"] = (
                                                pen.get("btb_miss", 0) + btb_pen
                                            )
                                        b_targets[found] = tgt
                                        b_clock += 1
                                        b_stamps[found] = b_clock
                                else:
                                    if btb_pen > 0:
                                        cycles += btb_pen
                                        pen["btb_miss"] = (
                                            pen.get("btb_miss", 0) + btb_pen
                                        )
                                    victim = -1
                                    vstamp = 0
                                    for slot in range(base, base + b_assoc):
                                        if b_tags[slot] == -1:
                                            victim = slot
                                            break
                                        s = b_stamps[slot]
                                        if victim < 0 or s < vstamp:
                                            victim = slot
                                            vstamp = s
                                    b_tags[victim] = ip
                                    b_targets[victim] = tgt
                                    b_clock += 1
                                    b_stamps[victim] = b_clock
                                break
                            else:
                                if c > 0:
                                    g_counters[gi] = c - 1
                                g_hist = (g_hist << 1) & g_hmask
                                if c >= 2:
                                    cond_misp += 1
                                    if misp_pen > 0:
                                        cycles += misp_pen
                                        pen["mispredict"] = (
                                            pen.get("mispredict", 0) + misp_pen
                                        )
                                    break
                        elif k == c_ret:
                            ret_pred += 1
                            if r_count == 0:
                                predicted = -1
                            else:
                                r_top -= 1
                                if r_top < 0:
                                    r_top = r_depth - 1
                                r_count -= 1
                                predicted = r_slots[r_top]
                            if predicted != next_ips[i]:
                                ret_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                            elif bubble > 0:
                                cycles += bubble
                                pen["redirect"] = pen.get("redirect", 0) + bubble
                            break
                        elif k == c_call or k == c_jump:
                            if k == c_call:
                                if r_count < r_depth:
                                    r_count += 1
                                r_slots[r_top] = snexts[i]
                                r_top += 1
                                if r_top == r_depth:
                                    r_top = 0
                            tgt = next_ips[i]
                            base = ((ip >> 1) & b_set_mask) * b_assoc
                            found = -1
                            for slot in range(base, base + b_assoc):
                                if b_tags[slot] == ip:
                                    found = slot
                                    break
                            if found >= 0:
                                b_clock += 1
                                b_stamps[found] = b_clock
                                if b_targets[found] == tgt:
                                    if bubble > 0:
                                        cycles += bubble
                                        pen["redirect"] = (
                                            pen.get("redirect", 0) + bubble
                                        )
                                else:
                                    if btb_pen > 0:
                                        cycles += btb_pen
                                        pen["btb_miss"] = (
                                            pen.get("btb_miss", 0) + btb_pen
                                        )
                                    b_targets[found] = tgt
                                    b_clock += 1
                                    b_stamps[found] = b_clock
                            else:
                                if btb_pen > 0:
                                    cycles += btb_pen
                                    pen["btb_miss"] = (
                                        pen.get("btb_miss", 0) + btb_pen
                                    )
                                victim = -1
                                vstamp = 0
                                for slot in range(base, base + b_assoc):
                                    if b_tags[slot] == -1:
                                        victim = slot
                                        break
                                    s = b_stamps[slot]
                                    if victim < 0 or s < vstamp:
                                        victim = slot
                                        vstamp = s
                                b_tags[victim] = ip
                                b_targets[victim] = tgt
                                b_clock += 1
                                b_stamps[victim] = b_clock
                            break
                        else:  # indirect jump / indirect call
                            ind_pred += 1
                            if k == c_icall:
                                if r_count < r_depth:
                                    r_count += 1
                                r_slots[r_top] = snexts[i]
                                r_top += 1
                                if r_top == r_depth:
                                    r_top = 0
                            nxt = next_ips[i]
                            ii = ((ip >> 1) ^ (i_hist << 2)) & i_imask
                            hit = i_tags[ii] == ip and i_targets[ii] == nxt
                            i_tags[ii] = ip
                            i_targets[ii] = nxt
                            mixed = (nxt ^ (nxt >> 4) ^ (nxt >> 9)) & 0xF
                            i_hist = ((i_hist << 2) ^ mixed) & i_hmask
                            if not hit:
                                ind_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                            elif bubble > 0:
                                cycles += bubble
                                pen["redirect"] = pen.get("redirect", 0) + bubble
                            break
                from_ic += cuops
                occ += cuops
                if logging:
                    cycle_log.append(cuops)

                # ---- feed the fill unit (oracle: TcFillUnit.feed) ----
                completed = False
                for i in range(start, pos):
                    nu = nuops[i]
                    if pending and pending_uops + nu > line_quota:
                        # Quota cut: the instruction starts the next trace.
                        completed |= finalize()
                    k = kinds[i]
                    pending.append((ips[i], takens[i], k, nu, snexts[i]))
                    pending_uops += nu
                    if k == branch_floor:
                        pending_conds += 1
                    if (
                        k == c_ijump
                        or k == c_icall
                        or k == c_ret
                        or pending_uops >= line_quota
                        or pending_conds >= max_conds
                    ):
                        completed |= finalize()
                if completed and pos < total and (
                    ips[pos] in sets[(ips[pos] >> 1) & set_mask]
                ):
                    delivery = True
                    pending = []
                    pending_uops = 0
                    pending_conds = 0
                    sw_deliver += 1
                    if mode_pen > 0:
                        cycles += mode_pen
                        pen["mode_switch"] = pen.get("mode_switch", 0) + mode_pen
        if occ:
            cycles += (occ + width - 1) // width
            retired += occ

        # redundancy audit over the resident lines (oracle:
        # TraceCache.redundancy / stored_uops)
        copies: dict = {}
        resident_uops = 0
        for bucket in sets:
            for entries, line_uops_total, _stamp in bucket.values():
                resident_uops += line_uops_total
                for ip, _taken, _k, nu, _snext in entries:
                    for index in range(nu):
                        key = (ip << 4) | index
                        copies[key] = copies.get(key, 0) + 1
        if copies:
            redundancy = sum(copies.values()) / len(copies)
        else:
            redundancy = 1.0

        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        stats.cycles = cycles
        stats.build_cycles = build_cycles
        stats.delivery_cycles = delivery_cycles
        stats.penalty_cycles = pen
        stats.uops_from_ic = from_ic
        stats.uops_from_structure = from_structure
        stats.retired_uops = retired
        stats.structure_fetch_cycles = fetch_cycles_s
        stats.structure_lookups = s_lookups
        stats.structure_hits = s_hits
        stats.blocks_built = blocks_built
        stats.switches_to_delivery = sw_deliver
        stats.switches_to_build = sw_build
        stats.cond_predictions = cond_pred
        stats.cond_mispredicts = cond_misp
        stats.indirect_predictions = ind_pred
        stats.indirect_mispredicts = ind_misp
        stats.return_predictions = ret_pred
        stats.return_mispredicts = ret_misp
        stats.ic_lookups = ic_lookups
        stats.ic_misses = ic_misses
        stats.extra["tc_redundancy_x1000"] = int(redundancy * 1000)
        stats.extra["tc_resident_uops"] = resident_uops
        stats.verify_conservation(trace.total_uops)
        return stats

    # ------------------------------------------------------------------
    # reference path (behavioural oracle; also the path-assoc model)
    # ------------------------------------------------------------------

    def _run_reference(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        config = self.config
        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        flow = UopFlow(config, stats)

        gshare = GsharePredictor(config.gshare_history_bits, config.gshare_entries)
        rsb: ReturnStackBuffer = ReturnStackBuffer(config.rsb_depth)
        indirect: IndirectPredictor = IndirectPredictor(
            config.indirect_entries, config.indirect_history_bits
        )
        engine = BuildEngine(
            config=config,
            stats=stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=gshare,
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=rsb,
            indirect=indirect,
        )
        cache = TraceCache(self.tc_config)
        fill = TcFillUnit(self.tc_config)

        ips = trace.ips
        takens = trace.takens
        instr_table = trace.instr_table
        total = len(trace)
        pos = 0
        delivery = False
        max_build_uops = 4 * config.decode_width

        while pos < total:
            stats.cycles += 1
            flow.drain()

            if delivery:
                stats.delivery_cycles += 1
                if not flow.can_accept(self.tc_config.line_uops):
                    if cycle_log is not None:
                        cycle_log.append(0)
                    continue
                stats.structure_lookups += 1
                line = self._select_line(
                    cache, cache.lookup_all(ips[pos]), gshare
                )
                if line is None:
                    delivery = False
                    stats.switches_to_build += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)
                    if cycle_log is not None:
                        cycle_log.append(0)
                    continue
                stats.structure_hits += 1
                stats.structure_fetch_cycles += 1
                uops, pos = self._consume_line(
                    line, trace, pos, stats, gshare, rsb, indirect
                )
                stats.uops_from_structure += uops
                flow.push(uops)
                if cycle_log is not None:
                    cycle_log.append(uops)
            else:
                stats.build_cycles += 1
                if not flow.can_accept(max_build_uops):
                    if cycle_log is not None:
                        cycle_log.append(0)
                    continue
                pos, cycle = engine.fetch_cycle(trace, pos)
                stats.uops_from_ic += cycle.uops
                flow.push(cycle.uops)
                if cycle_log is not None:
                    cycle_log.append(cycle.uops)
                for cause, cycles in cycle.penalties.items():
                    stats.add_penalty(cause, cycles)
                completed = False
                for i in range(cycle.start, cycle.end):
                    for line in fill.feed(instr_table[ips[i]], bool(takens[i])):
                        cache.insert(line)
                        stats.blocks_built += 1
                        completed = True
                if completed and pos < total and cache.contains(ips[pos]):
                    delivery = True
                    fill.abandon()
                    stats.switches_to_delivery += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)

        flow.drain_all()
        stats.extra["tc_redundancy_x1000"] = int(cache.redundancy() * 1000)
        stats.extra["tc_resident_uops"] = cache.stored_uops()
        stats.verify_conservation(trace.total_uops)
        return stats

    # ------------------------------------------------------------------

    def _select_line(self, cache, candidates, gshare):
        """Pick among same-start traces by predicted path ([Jaco97]).

        Without path associativity there is at most one candidate.  With
        it, the line whose embedded directions the predictor agrees with
        longest wins (predictions are peeked, not consumed — consumption
        happens when the line is walked against the actual path).
        """
        if len(candidates) <= 1:
            return candidates[0] if candidates else None
        best = None
        best_score = -1
        for line in candidates:
            score = 0
            for entry in line.entries:
                if entry.instr.kind is InstrKind.COND_BRANCH:
                    if gshare.predict(entry.instr.ip) != entry.taken:
                        break
                    score += 1
            if score > best_score:
                best = line
                best_score = score
        cache.touch(best)
        return best

    def _consume_line(
        self,
        line: TraceLine,
        trace: Trace,
        pos: int,
        stats: FrontendStats,
        gshare: GsharePredictor,
        rsb: ReturnStackBuffer,
        indirect: IndirectPredictor,
    ) -> Tuple[int, int]:
        """Deliver the line against the actual path.

        Returns ``(correct-path uops delivered, new trace position)``.
        Delivery stops at the first conditional branch where the
        recorded path or the prediction leaves the actual path.
        """
        config = self.config
        ips = trace.ips
        takens = trace.takens
        next_ips = trace.next_ips
        total = len(ips)
        uops = 0
        consumed = 0
        for entry in line.entries:
            index = pos + consumed
            if index >= total:
                break
            instr = entry.instr
            if ips[index] != instr.ip:
                break  # stale line contents relative to the actual path
            consumed += 1
            uops += instr.num_uops
            kind = instr.kind

            if kind is InstrKind.COND_BRANCH:
                taken = bool(takens[index])
                stats.cond_predictions += 1
                correct = gshare.update(instr.ip, taken)
                if not correct:
                    stats.cond_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
                    break
                if taken != entry.taken:
                    break  # partial hit: recorded path leaves the actual path
            elif kind is InstrKind.CALL:
                rsb.push(instr.next_ip)
            elif kind is InstrKind.INDIRECT_CALL:
                rsb.push(instr.next_ip)
                stats.indirect_predictions += 1
                nxt = next_ips[index]
                if not indirect.update(instr.ip, nxt, nxt):
                    stats.indirect_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
            elif kind is InstrKind.INDIRECT_JUMP:
                stats.indirect_predictions += 1
                nxt = next_ips[index]
                if not indirect.update(instr.ip, nxt, nxt):
                    stats.indirect_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
            elif kind is InstrKind.RETURN:
                stats.return_predictions += 1
                if rsb.pop() != next_ips[index]:
                    stats.return_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
        return uops, pos + consumed
