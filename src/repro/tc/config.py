"""Trace-cache configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitutils import log2_exact
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class TcConfig:
    """Geometry and policy of the trace cache.

    ``total_uops`` is the paper's capacity unit: the number of uop slots
    in the data array (sets × assoc × line_uops).  The §4 baseline is a
    4-way cache with 16-uop lines and at most 3 conditional branches
    per trace.
    """

    total_uops: int = 8192
    assoc: int = 4
    line_uops: int = 16
    max_cond_branches: int = 3
    #: [Jaco97]-style path associativity: several traces with the same
    #: start IP may coexist (selected by predicted path).  The §4
    #: baseline the paper simulates has this OFF — same-start traces
    #: replace each other.
    path_associativity: bool = False

    @property
    def num_sets(self) -> int:
        """Number of sets implied by the uop budget."""
        return self.total_uops // (self.line_uops * self.assoc)

    def validate(self) -> None:
        """Raise :class:`ConfigError` for inconsistent geometry."""
        if self.assoc < 1:
            raise ConfigError("assoc must be >= 1")
        if self.line_uops < 4:
            raise ConfigError("line_uops must be >= 4")
        if self.max_cond_branches < 1:
            raise ConfigError("max_cond_branches must be >= 1")
        if self.total_uops % (self.line_uops * self.assoc):
            raise ConfigError(
                "total_uops must be divisible by line_uops * assoc"
            )
        try:
            log2_exact(self.num_sets)
        except ValueError as exc:
            raise ConfigError(f"num_sets must be a power of two: {exc}") from exc
