"""Trace-line data structure.

A trace is the dynamic path recorded at build time: an ordered list of
(instruction, taken) entries.  The embedded directions are what the
delivery-mode predictor is compared against, and what makes the same
static instruction appear in many lines — the redundancy the XBC
removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.isa.instruction import Instruction, InstrKind


@dataclass(frozen=True)
class TraceEntry:
    """One instruction inside a trace with its recorded direction."""

    instr: Instruction
    taken: bool


class TraceLine:
    """An immutable built trace."""

    def __init__(self, entries: List[TraceEntry]) -> None:
        if not entries:
            raise ValueError("a trace line needs at least one instruction")
        self.entries: Tuple[TraceEntry, ...] = tuple(entries)
        self.start_ip = entries[0].instr.ip
        self.total_uops = sum(e.instr.num_uops for e in entries)
        self.num_cond_branches = sum(
            1 for e in entries if e.instr.kind is InstrKind.COND_BRANCH
        )

    def __len__(self) -> int:
        return len(self.entries)

    def path_signature(self) -> Tuple[Tuple[int, bool], ...]:
        """Identity of the recorded path (for duplicate detection)."""
        return tuple((e.instr.ip, e.taken) for e in self.entries)

    def same_path_as(self, other: "TraceLine") -> bool:
        """True when both lines record the identical instruction path."""
        return self.path_signature() == other.path_signature()

    def uop_ips(self) -> List[int]:
        """IPs of member instructions, repeated per uop (redundancy audit)."""
        ips: List[int] = []
        for entry in self.entries:
            ips.extend([entry.instr.ip] * entry.instr.num_uops)
        return ips

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceLine(start={self.start_ip:#x}, instrs={len(self.entries)}, "
            f"uops={self.total_uops}, conds={self.num_cond_branches})"
        )
