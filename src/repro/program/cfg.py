"""Control-flow-graph data model.

A synthetic program is generated in two stages:

1. *Specification*: functions made of :class:`BasicBlockSpec` records —
   block sizes, terminator kinds and successor block ids, no addresses.
2. *Layout*: the specs are placed into a linear address space, producing
   concrete :class:`~repro.isa.instruction.Instruction` objects, a
   :class:`~repro.isa.image.ProgramImage`, and :class:`LayoutBlock`
   records the trace executor walks.

Keeping the two stages separate makes the generator testable (structure
invariants can be checked before any addresses exist) and keeps layout
policy — instruction sizes, function placement — in one place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.image import ProgramImage
from repro.isa.instruction import Instruction, InstrKind
from repro.program.behavior import BranchBehavior, IndirectBehavior


class TerminatorKind(enum.Enum):
    """How a generated basic block ends."""

    COND = "cond"          # conditional branch: taken target + fallthrough
    JUMP = "jump"          # unconditional direct jump
    CALL = "call"          # direct call; execution resumes at fallthrough
    INDIRECT_CALL = "indirect_call"
    INDIRECT = "indirect"  # indirect jump (switch-like)
    RET = "ret"            # function return

    @property
    def instr_kind(self) -> InstrKind:
        """The instruction kind this terminator lowers to."""
        return _TERM_INSTR_KIND[self]


#: Lowering table for :attr:`TerminatorKind.instr_kind` (built once; the
#: generator consults it per terminator).
_TERM_INSTR_KIND: Dict[TerminatorKind, InstrKind] = {
    TerminatorKind.COND: InstrKind.COND_BRANCH,
    TerminatorKind.JUMP: InstrKind.JUMP,
    TerminatorKind.CALL: InstrKind.CALL,
    TerminatorKind.INDIRECT_CALL: InstrKind.INDIRECT_CALL,
    TerminatorKind.INDIRECT: InstrKind.INDIRECT_JUMP,
    TerminatorKind.RET: InstrKind.RETURN,
}


@dataclass
class BasicBlockSpec:
    """A basic block before layout.

    Successor fields hold *global block ids*; which ones are meaningful
    depends on :attr:`terminator`:

    - ``COND``: :attr:`taken_bid` and :attr:`fall_bid`
    - ``JUMP``: :attr:`taken_bid`
    - ``CALL``/``INDIRECT_CALL``: callee entry via :attr:`taken_bid`
      (direct) or :attr:`indirect_bids` (indirect), return continues at
      :attr:`fall_bid`
    - ``INDIRECT``: :attr:`indirect_bids`
    - ``RET``: none (the executor's call stack supplies the successor)
    """

    bid: int
    fid: int
    body_uop_counts: List[int]  # uops of each non-branch body instruction
    terminator: TerminatorKind
    taken_bid: Optional[int] = None
    fall_bid: Optional[int] = None
    indirect_bids: List[int] = field(default_factory=list)
    #: for COND terminators: "backedge" (planned loop), "escape" (rare
    #: loop break, monotonic not-taken) or "plain" (behaviour mixture)
    cond_class: str = "plain"

    @property
    def num_body_instrs(self) -> int:
        """Non-branch instructions in the block."""
        return len(self.body_uop_counts)

    def validate(self) -> None:
        """Check terminator/successor consistency; raises ``ValueError``."""
        t = self.terminator
        if t is TerminatorKind.COND:
            if self.taken_bid is None or self.fall_bid is None:
                raise ValueError(f"block {self.bid}: COND needs taken and fall")
        elif t is TerminatorKind.JUMP:
            if self.taken_bid is None:
                raise ValueError(f"block {self.bid}: JUMP needs a target")
        elif t is TerminatorKind.CALL:
            if self.taken_bid is None or self.fall_bid is None:
                raise ValueError(f"block {self.bid}: CALL needs callee and fall")
        elif t is TerminatorKind.INDIRECT_CALL:
            if not self.indirect_bids or self.fall_bid is None:
                raise ValueError(
                    f"block {self.bid}: INDIRECT_CALL needs targets and fall"
                )
        elif t is TerminatorKind.INDIRECT:
            if not self.indirect_bids:
                raise ValueError(f"block {self.bid}: INDIRECT needs targets")


@dataclass
class FunctionSpec:
    """A generated function: a list of block ids in spine order."""

    fid: int
    level: int  # call-graph depth; level-L functions call level>L only
    block_bids: List[int]

    @property
    def entry_bid(self) -> int:
        """Global id of the function's entry block."""
        return self.block_bids[0]


@dataclass
class LayoutBlock:
    """A basic block after layout: concrete instructions + successors."""

    bid: int
    fid: int
    entry_ip: int
    body: List[Instruction]
    terminator: Instruction
    taken_bid: Optional[int]
    fall_bid: Optional[int]
    indirect_bids: List[int]
    terminator_kind: TerminatorKind

    @property
    def instructions(self) -> List[Instruction]:
        """Body plus terminator, in program order."""
        return self.body + [self.terminator]

    @property
    def num_uops(self) -> int:
        """Total uops of the block (the Figure-1 length unit)."""
        return sum(i.num_uops for i in self.instructions)


class Program:
    """A fully laid-out synthetic program.

    Holds the static image, per-block layout records, and the behaviour
    objects for every conditional/indirect terminator.  The executor in
    :mod:`repro.trace.executor` is a walk over this structure.
    """

    def __init__(
        self,
        image: ProgramImage,
        blocks: Dict[int, LayoutBlock],
        functions: List[FunctionSpec],
        entry_bid: int,
        cond_behaviors: Dict[int, BranchBehavior],
        indirect_behaviors: Dict[int, IndirectBehavior],
        suite: str = "",
        name: str = "",
        seed: int = 0,
    ) -> None:
        self.image = image
        self.blocks = blocks
        self.functions = functions
        self.entry_bid = entry_bid
        self.cond_behaviors = cond_behaviors        # key: terminator IP
        self.indirect_behaviors = indirect_behaviors  # key: terminator IP
        self.suite = suite
        self.name = name
        self.seed = seed
        self._block_by_entry_ip = {b.entry_ip: b.bid for b in blocks.values()}
        #: True once any execution has advanced behaviour state; lets
        #: the executor skip the (reseed-everything) reset on a program
        #: that has never run.
        self.behaviors_dirty = False

    @property
    def entry_block(self) -> LayoutBlock:
        """The block execution starts at."""
        return self.blocks[self.entry_bid]

    def block_at_ip(self, ip: int) -> Optional[LayoutBlock]:
        """The block whose entry is exactly *ip*, if any."""
        bid = self._block_by_entry_ip.get(ip)
        return self.blocks[bid] if bid is not None else None

    @property
    def static_uops(self) -> int:
        """Static footprint in uops."""
        return self.image.total_uops

    @property
    def num_blocks(self) -> int:
        """Number of basic blocks."""
        return len(self.blocks)

    def reset_behaviors(self) -> None:
        """Reset all behaviour state so a fresh execution is identical."""
        for behavior in self.cond_behaviors.values():
            behavior.reset()
        for behavior in self.indirect_behaviors.values():
            behavior.reset()
        self.behaviors_dirty = False

    def describe(self) -> str:
        """One-line summary used by the CLI and examples."""
        return (
            f"program {self.name or '?'} (suite={self.suite or '?'}, "
            f"seed={self.seed}): {len(self.functions)} functions, "
            f"{self.num_blocks} blocks, {self.static_uops} static uops, "
            f"{self.image.total_bytes} bytes"
        )
