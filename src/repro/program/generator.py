"""Synthetic program generator.

Turns a :class:`~repro.program.profiles.WorkloadProfile` plus a seed
into a laid-out :class:`~repro.program.cfg.Program`:

1. **Call graph** — function 0 is ``main``; every other function gets a
   call-graph level in ``1..max_call_depth`` and a callee set drawn from
   strictly deeper levels, so the call graph is acyclic and the dynamic
   call depth is bounded (no recursion).  ``main`` loops forever over
   calls to every level-1 function, giving the trace its phase/reuse
   structure; the executor's instruction budget terminates it.
2. **Blocks** — each function is a spine of basic blocks.  Conditional
   backedges (always bound to a :class:`LoopBehavior`, so every
   intra-function cycle is trip-limited) create loops; forward
   conditional/unconditional targets create join points, which is what
   gives extended blocks their multiple entry points.
3. **Layout** — blocks are lowered to IA-32-like instructions (1–11
   bytes, 1–4 uops) in a linear address space, and behaviour objects
   are attached to every conditional/indirect terminator IP.
"""

from __future__ import annotations

from math import log
from typing import Dict, List, Optional, Tuple

from repro.common.errors import GenerationError
from repro.common.rng import DeterministicRng
from repro.isa.image import ProgramImage
from repro.isa.instruction import Instruction, InstrKind
from repro.program.behavior import (
    BiasedBehavior,
    BranchBehavior,
    IndirectBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.program.cfg import (
    BasicBlockSpec,
    FunctionSpec,
    LayoutBlock,
    Program,
    TerminatorKind,
)
from repro.program.profiles import WorkloadProfile

#: Byte size and uop count of each terminator kind (IA-32-flavoured).
_TERMINATOR_SHAPE: Dict[TerminatorKind, Tuple[int, int]] = {
    TerminatorKind.COND: (2, 1),
    TerminatorKind.JUMP: (2, 1),
    TerminatorKind.CALL: (3, 2),
    TerminatorKind.INDIRECT_CALL: (3, 2),
    TerminatorKind.INDIRECT: (2, 1),
    TerminatorKind.RET: (1, 2),
}

#: Minimum gap left between functions during layout (bytes).
_MIN_FUNCTION_GAP = 16


class ProgramGenerator:
    """Generates one synthetic program from a profile and a seed."""

    def __init__(self, profile: WorkloadProfile, seed: int) -> None:
        profile.validate()
        self.profile = profile
        self.seed = seed
        self._rng = DeterministicRng(seed)
        self._body_thresholds = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self, name: str = "", suite: str = "") -> Program:
        """Build the program (call graph → blocks → layout)."""
        levels = self._assign_levels()
        callees = self._assign_callees(levels)
        functions, specs = self._build_blocks(levels, callees)
        return self._layout(functions, specs, name=name, suite=suite or self.profile.name)

    # ------------------------------------------------------------------
    # call graph
    # ------------------------------------------------------------------

    def _assign_levels(self) -> List[int]:
        """Level per function id; main (id 0) is level 0."""
        p = self.profile
        rng = self._rng.fork(1)
        levels = [0]
        for fid in range(1, p.num_functions):
            levels.append(rng.randint(1, p.max_call_depth))
        # Guarantee at least one level-1 function (main needs callees)
        # and at least one function at the deepest level is harmless to skip.
        if 1 not in levels[1:]:
            levels[1] = 1
        return levels

    def _assign_callees(self, levels: List[int]) -> List[List[int]]:
        """Callee set per function, acyclic by construction (deeper only)."""
        p = self.profile
        rng = self._rng.fork(2)
        by_level: Dict[int, List[int]] = {}
        for fid, level in enumerate(levels):
            by_level.setdefault(level, []).append(fid)

        callees: List[List[int]] = [[] for _ in levels]
        # main calls every level-1 function: this is the outer phase loop.
        callees[0] = list(by_level.get(1, []))

        # Candidate sets depend only on the caller's level, so build the
        # "functions deeper than L" lists once per level (ascending fid,
        # matching the old per-function scan exactly) instead of doing
        # an O(n) scan per function — O(n^2) at server function counts.
        max_level = max(levels) if levels else 0
        deeper_than: Dict[int, List[int]] = {
            level: [
                g for g in range(1, len(levels)) if levels[g] > level
            ]
            for level in range(max_level + 1)
        }

        for fid in range(1, len(levels)):
            level = levels[fid]
            candidates = deeper_than[level]
            if not candidates:
                continue  # leaf function
            want = rng.geometric(p.mean_callees_per_function, lo=1, hi=6)
            want = min(want, len(candidates))
            # Zipf-popular callees: a few hot shared functions.
            chosen: List[int] = []
            for _ in range(want * 3):
                pick = rng.zipf_choice(candidates, p.callee_popularity_skew)
                if pick not in chosen:
                    chosen.append(pick)
                if len(chosen) == want:
                    break
            callees[fid] = chosen

        # Coverage fix: every non-main function should be reachable from
        # some shallower caller, otherwise it is pure dead code.  Same
        # per-level precompute as above (main, level 0, included here).
        shallower_than: Dict[int, List[int]] = {
            level: [
                g for g in range(len(levels)) if levels[g] < level
            ]
            for level in range(1, max_level + 1)
        }
        covered = set()
        for cs in callees:
            covered.update(cs)
        for fid in range(1, len(levels)):
            if fid in covered:
                continue
            caller = rng.choice(shallower_than[levels[fid]])
            callees[caller].append(fid)
        return callees

    # ------------------------------------------------------------------
    # block structure
    # ------------------------------------------------------------------

    def _build_blocks(
        self,
        levels: List[int],
        callees: List[List[int]],
    ) -> Tuple[List[FunctionSpec], Dict[int, BasicBlockSpec]]:
        """Create every function's block specs with global block ids."""
        p = self.profile
        functions: List[FunctionSpec] = []
        specs: Dict[int, BasicBlockSpec] = {}
        next_bid = 0

        # First pass: reserve block-id ranges so calls can reference the
        # callee entry block before the callee's blocks are generated.
        counts: List[int] = []
        for fid in range(p.num_functions):
            if fid == 0:
                counts.append(len(callees[0]) + 1)  # one call block each + loop-back
            else:
                rng = self._rng.fork(100 + fid)
                counts.append(
                    rng.geometric(
                        p.mean_blocks_per_function,
                        lo=p.min_blocks_per_function,
                        hi=p.max_blocks_per_function,
                    )
                )
        entry_bids: List[int] = []
        for count in counts:
            entry_bids.append(next_bid)
            next_bid += count

        for fid in range(p.num_functions):
            base = entry_bids[fid]
            bids = list(range(base, base + counts[fid]))
            functions.append(FunctionSpec(fid=fid, level=levels[fid], block_bids=bids))
            if fid == 0:
                self._build_main_blocks(specs, bids, callees[0], entry_bids)
            else:
                self._build_function_blocks(
                    specs, fid, bids, callees[fid], entry_bids
                )

        for spec in specs.values():
            spec.validate()
        if not specs:
            raise GenerationError("generator produced no blocks")
        return functions, specs

    def _build_main_blocks(
        self,
        specs: Dict[int, BasicBlockSpec],
        bids: List[int],
        main_callees: List[int],
        entry_bids: List[int],
    ) -> None:
        """main: one CALL block per level-1 function, then loop forever."""
        rng = self._rng.fork(99)
        p = self.profile
        for i, callee_fid in enumerate(main_callees):
            bid = bids[i]
            specs[bid] = BasicBlockSpec(
                bid=bid,
                fid=0,
                body_uop_counts=self._draw_body(rng),
                terminator=TerminatorKind.CALL,
                taken_bid=entry_bids[callee_fid],
                fall_bid=bids[i + 1],
            )
        last = bids[-1]
        specs[last] = BasicBlockSpec(
            bid=last,
            fid=0,
            body_uop_counts=self._draw_body(rng),
            terminator=TerminatorKind.JUMP,
            taken_bid=bids[0],
        )

    def _plan_loops(self, rng: DeterministicRng, nb: int) -> Dict[int, int]:
        """Plan loop intervals on a function spine.

        Returns ``{backedge_block_index: loop_start_index}``.  Loops are
        disjoint along the spine, with at most one nested inner loop per
        outer loop (depth <= 2), which keeps the dynamic blow-up of
        nested trip counts bounded while still exercising nesting.
        """
        p = self.profile
        loops: Dict[int, int] = {}
        pos = 0
        while True:
            gap = rng.geometric(p.mean_loop_gap, lo=0, hi=12)
            start = pos + gap
            body = rng.geometric(p.mean_loop_body, lo=1, hi=p.max_backedge_span)
            end = start + body
            if end >= nb - 1:
                return loops
            loops[end] = start
            if body >= 3 and rng.random() < p.p_nested_loop:
                inner_body = rng.randint(1, body - 2)
                inner_start = rng.randint(start, end - 1 - inner_body)
                loops[inner_start + inner_body] = inner_start
            pos = end + 1

    @staticmethod
    def _innermost_loop_end(loops: Dict[int, int], index: int) -> Optional[int]:
        """Backedge index of the innermost loop whose body contains *index*."""
        best: Optional[int] = None
        for end, start in loops.items():
            if start <= index < end and (best is None or end < best):
                best = end
        return best

    def _build_function_blocks(
        self,
        specs: Dict[int, BasicBlockSpec],
        fid: int,
        bids: List[int],
        fn_callees: List[int],
        entry_bids: List[int],
    ) -> None:
        """Generate the spine of one non-main function.

        Control flow inside a planned loop body stays inside the loop
        (targets are clamped to the backedge block), so loops actually
        iterate; rare "escape" conditionals model loop breaks and are
        bound to monotonic not-taken behaviour.
        """
        p = self.profile
        rng = self._rng.fork(1000 + fid)
        nb = len(bids)
        loops = self._plan_loops(rng.fork(7), nb)
        join_targets: List[int] = []  # local indices already targeted
        forced_jump: Dict[int, int] = {}  # diamond/switch "break" jumps

        for i in range(nb):
            bid = bids[i]
            body = self._draw_body(rng)
            if i == nb - 1:
                specs[bid] = BasicBlockSpec(
                    bid=bid, fid=fid, body_uop_counts=body,
                    terminator=TerminatorKind.RET,
                )
                continue
            if i in loops:
                specs[bid] = BasicBlockSpec(
                    bid=bid, fid=fid, body_uop_counts=body,
                    terminator=TerminatorKind.COND,
                    taken_bid=bids[loops[i]],
                    fall_bid=bids[i + 1],
                    cond_class="backedge",
                )
                continue

            enclosing_end = self._innermost_loop_end(loops, i)
            # The furthest forward target this block may use: the
            # enclosing backedge block when in a loop, else the spine end.
            clamp = enclosing_end if enclosing_end is not None else nb - 1
            if i in forced_jump:
                # A diamond arm or switch case breaking to its merge
                # block: two such arms give one XB two distinct prefixes
                # (§3.3 case 3).
                specs[bid] = BasicBlockSpec(
                    bid=bid, fid=fid, body_uop_counts=body,
                    terminator=TerminatorKind.JUMP,
                    taken_bid=bids[forced_jump[i]],
                )
                continue
            kind = self._draw_terminator(rng, i, clamp, fn_callees)
            spec = BasicBlockSpec(
                bid=bid, fid=fid, body_uop_counts=body, terminator=kind
            )
            if kind is TerminatorKind.COND:
                spec.fall_bid = bids[i + 1]
                if (
                    enclosing_end is not None
                    and enclosing_end + 1 < nb
                    and rng.random() < p.p_loop_escape
                ):
                    hi = min(nb - 1, enclosing_end + 1 + p.max_forward_jump_blocks)
                    spec.taken_bid = bids[rng.randint(enclosing_end + 1, hi)]
                    spec.cond_class = "escape"
                else:
                    hi = min(clamp, i + 1 + p.max_forward_jump_blocks)
                    target = rng.randint(i + 1, hi)
                    join_targets.append(target)
                    spec.taken_bid = bids[target]
                    self._maybe_diamond(
                        rng, loops, forced_jump, i, target, clamp, nb
                    )
            elif kind is TerminatorKind.JUMP:
                hi = min(clamp, i + 1 + p.max_forward_jump_blocks)
                # Prefer re-converging on an existing join: this is the
                # if/else-diamond shape that yields shared-suffix XBs.
                joins = [t for t in join_targets if i + 1 <= t <= hi]
                if joins and rng.random() < p.p_join_jump:
                    target = rng.choice(joins)
                else:
                    target = rng.randint(i + 1, hi)
                join_targets.append(target)
                spec.taken_bid = bids[target]
            elif kind is TerminatorKind.CALL:
                callee = rng.zipf_choice(fn_callees, p.callee_popularity_skew)
                spec.taken_bid = entry_bids[callee]
                spec.fall_bid = bids[i + 1]
            elif kind is TerminatorKind.INDIRECT_CALL:
                count = min(len(fn_callees), rng.randint(2, 4))
                spec.indirect_bids = [
                    entry_bids[c] for c in rng.sample(fn_callees, count)
                ]
                spec.fall_bid = bids[i + 1]
            elif kind is TerminatorKind.INDIRECT:
                lo_pool = i + 1
                pool = list(range(lo_pool, clamp + 1))
                count = rng.geometric(
                    p.mean_indirect_targets, lo=2, hi=p.max_indirect_targets
                )
                count = min(count, len(pool))
                locals_chosen = rng.sample(pool, count)
                spec.indirect_bids = [bids[t] for t in locals_chosen]
                self._maybe_switch_merge(
                    rng, loops, forced_jump, locals_chosen, clamp, nb
                )
            specs[bid] = spec

    def _maybe_diamond(
        self,
        rng: DeterministicRng,
        loops: Dict[int, int],
        forced_jump: Dict[int, int],
        i: int,
        taken: int,
        clamp: int,
        nb: int,
    ) -> None:
        """Close an if/else into a diamond: then-arm jumps over the else."""
        p = self.profile
        if rng.random() >= p.p_diamond:
            return
        arm_end = taken - 1
        if arm_end <= i or arm_end in loops or arm_end in forced_jump:
            return
        hi = min(clamp, taken + 4)
        if hi <= taken:
            return
        merge = rng.randint(taken + 1, hi) if hi > taken + 1 else taken + 1
        if self._jump_is_safe(loops, arm_end, merge, nb):
            forced_jump[arm_end] = merge

    def _maybe_switch_merge(
        self,
        rng: DeterministicRng,
        loops: Dict[int, int],
        forced_jump: Dict[int, int],
        targets: List[int],
        clamp: int,
        nb: int,
    ) -> None:
        """Make switch cases break to one merge block (shared suffix)."""
        p = self.profile
        if rng.random() >= p.p_switch_merge:
            return
        top = max(targets)
        if top >= clamp:
            return
        merge = rng.randint(top + 1, clamp)
        for t in targets:
            if t == merge or t in loops or t in forced_jump:
                continue
            if self._jump_is_safe(loops, t, merge, nb):
                forced_jump[t] = merge

    def _jump_is_safe(
        self,
        loops: Dict[int, int],
        source: int,
        target: int,
        nb: int,
    ) -> bool:
        """A forced jump must not escape the source's enclosing loop."""
        if target >= nb - 1 and target != nb - 1:
            return False
        enclosing = self._innermost_loop_end(loops, source)
        limit = enclosing if enclosing is not None else nb - 1
        return source < target <= limit

    def _draw_terminator(
        self,
        rng: DeterministicRng,
        index: int,
        clamp: int,
        fn_callees: List[int],
    ) -> TerminatorKind:
        """Draw a terminator kind, downgrading infeasible choices.

        *clamp* is the furthest forward block index available as a
        target (the enclosing backedge block inside loops).
        """
        p = self.profile
        kind = rng.weighted_choice([
            (TerminatorKind.COND, p.p_cond),
            (TerminatorKind.JUMP, p.p_jump),
            (TerminatorKind.CALL, p.p_call),
            (TerminatorKind.INDIRECT, p.p_indirect),
            (TerminatorKind.INDIRECT_CALL, p.p_indirect_call),
        ])
        if kind in (TerminatorKind.CALL, TerminatorKind.INDIRECT_CALL) and not fn_callees:
            kind = TerminatorKind.COND  # leaf function: nothing to call
        if kind is TerminatorKind.INDIRECT_CALL and len(fn_callees) < 2:
            kind = TerminatorKind.CALL
        if kind is TerminatorKind.INDIRECT and clamp - index < 2:
            kind = TerminatorKind.JUMP  # not enough forward blocks for a switch
        return kind

    def _draw_body(self, rng: DeterministicRng) -> List[int]:
        """Uop counts of a block's non-branch instructions."""
        p = self.profile
        count = rng.geometric(p.mean_body_instrs, lo=1, hi=p.max_body_instrs)
        # Inlined weighted_choice over p.uops_per_instr with cumulative
        # thresholds hoisted out of the per-instruction loop; the float
        # accumulation matches weighted_choice's exactly so the drawn
        # values (and the RNG stream) are unchanged.
        thresholds = self._body_thresholds
        if thresholds is None:
            total = sum(weight for _, weight in p.uops_per_instr)
            acc = 0.0
            pairs = []
            for item, weight in p.uops_per_instr:
                acc += weight
                pairs.append((acc, item))
            thresholds = (total, tuple(pairs), p.uops_per_instr[-1][0])
            self._body_thresholds = thresholds
        total, pairs, last = thresholds
        rnd = rng._materialize().random
        out: List[int] = []
        append = out.append
        for _ in range(count):
            point = rnd() * total
            for acc, item in pairs:
                if point < acc:
                    append(item)
                    break
            else:
                append(last)
        return out

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    def _layout(
        self,
        functions: List[FunctionSpec],
        specs: Dict[int, BasicBlockSpec],
        name: str,
        suite: str,
    ) -> Program:
        """Lower specs to instructions at concrete addresses."""
        rng = self._rng.fork(3)
        # Pass A: draw every instruction's shape, then assign addresses.
        # The kind/size draws are inlined (weighted_choice and geometric
        # unrolled with the same float accumulation and draw order, so
        # the RNG stream is unchanged): this loop runs once per static
        # instruction and dominates layout time.
        rnd = rng._materialize().random
        alu, load, store = InstrKind.ALU, InstrKind.LOAD, InstrKind.STORE
        kind_total = sum(w for w in (0.55, 0.30, 0.15))
        t_alu = 0.0 + 0.55
        t_load = t_alu + 0.30
        size_inv = 1.0 / log(1.0 - 1.0 / (3.2 - 1 + 1.0))
        body_shapes: Dict[int, List[Tuple[InstrKind, int, int]]] = {}
        entry_ips: Dict[int, int] = {}
        cursor = 0x1000
        for fn in functions:
            for bid in fn.block_bids:
                spec = specs[bid]
                shapes = []
                append = shapes.append
                for uops in spec.body_uop_counts:
                    point = rnd() * kind_total
                    if point < t_alu:
                        kind = alu
                    elif point < t_load:
                        kind = load
                    else:
                        kind = store
                    size = 1 + int(log(1.0 - rnd()) * size_inv)
                    if size > 11:
                        size = 11
                    append((kind, uops, size))
                body_shapes[bid] = shapes
                entry_ips[bid] = cursor
                term_size, _ = _TERMINATOR_SHAPE[spec.terminator]
                cursor += sum(s for _, _, s in shapes) + term_size
            cursor += _MIN_FUNCTION_GAP + rng.geometric(
                self.profile.mean_function_gap_bytes, lo=0, hi=65536
            )

        # Pass B: materialize instructions with resolved targets.
        image = ProgramImage()
        blocks: Dict[int, LayoutBlock] = {}
        cond_behaviors: Dict[int, BranchBehavior] = {}
        indirect_behaviors: Dict[int, IndirectBehavior] = {}
        for fn in functions:
            for bid in fn.block_bids:
                spec = specs[bid]
                ip = entry_ips[bid]
                body: List[Instruction] = []
                trusted = Instruction.trusted
                for kind, uops, size in body_shapes[bid]:
                    instr = trusted(ip, size, kind, uops)
                    body.append(instr)
                    image.add(instr)
                    ip += size
                term = self._make_terminator(spec, ip, entry_ips)
                image.add(term)
                blocks[bid] = LayoutBlock(
                    bid=bid,
                    fid=spec.fid,
                    entry_ip=entry_ips[bid],
                    body=body,
                    terminator=term,
                    taken_bid=spec.taken_bid,
                    fall_bid=spec.fall_bid,
                    indirect_bids=list(spec.indirect_bids),
                    terminator_kind=spec.terminator,
                )
                self._attach_behavior(
                    spec, term, entry_ips, cond_behaviors, indirect_behaviors
                )

        return Program(
            image=image.freeze(),
            blocks=blocks,
            functions=functions,
            entry_bid=functions[0].entry_bid,
            cond_behaviors=cond_behaviors,
            indirect_behaviors=indirect_behaviors,
            suite=suite,
            name=name,
            seed=self.seed,
        )

    def _make_terminator(
        self,
        spec: BasicBlockSpec,
        ip: int,
        entry_ips: Dict[int, int],
    ) -> Instruction:
        size, uops = _TERMINATOR_SHAPE[spec.terminator]
        target: Optional[int] = None
        if spec.taken_bid is not None and spec.terminator in (
            TerminatorKind.COND, TerminatorKind.JUMP, TerminatorKind.CALL
        ):
            target = entry_ips[spec.taken_bid]
        return Instruction.trusted(
            ip, size, spec.terminator.instr_kind, uops, target
        )

    def _attach_behavior(
        self,
        spec: BasicBlockSpec,
        term: Instruction,
        entry_ips: Dict[int, int],
        cond_behaviors: Dict[int, BranchBehavior],
        indirect_behaviors: Dict[int, IndirectBehavior],
    ) -> None:
        p = self.profile
        if spec.terminator is TerminatorKind.COND:
            rng = self._rng.fork(10_000 + spec.bid)
            if spec.cond_class == "backedge":
                behavior: BranchBehavior = LoopBehavior(
                    mean_trip=rng.geometric(
                        p.mean_loop_trip, lo=3, hi=p.max_mean_trip
                    ),
                    rng=rng.fork(1),
                )
            elif spec.cond_class == "escape":
                # Loop breaks fire rarely: monotonic not-taken, the
                # classic promotion candidate of §3.8.
                behavior = BiasedBehavior(p.escape_rate, rng.fork(6))
            else:
                behavior = self._draw_cond_behavior(rng)
            cond_behaviors[term.ip] = behavior
        elif spec.terminator in (
            TerminatorKind.INDIRECT, TerminatorKind.INDIRECT_CALL
        ):
            rng = self._rng.fork(10_000 + spec.bid)
            indirect_behaviors[term.ip] = IndirectBehavior(
                targets=[entry_ips[b] for b in spec.indirect_bids],
                rng=rng.fork(2),
                skew=p.indirect_skew,
            )

    def _draw_cond_behavior(self, rng: DeterministicRng) -> BranchBehavior:
        p = self.profile
        kind = rng.weighted_choice(list(p.cond_mixture))
        if kind == "monotonic":
            p_taken = p.monotonic_bias if rng.random() < 0.5 else 1 - p.monotonic_bias
            return BiasedBehavior(p_taken, rng.fork(3))
        if kind == "biased":
            lo, hi = p.biased_range
            p_taken = lo + rng.random() * (hi - lo)
            if rng.random() < 0.5:
                p_taken = 1.0 - p_taken
            return BiasedBehavior(p_taken, rng.fork(4))
        if kind == "pattern":
            period = rng.randint(2, p.pattern_max_period)
            pattern = [rng.random() < 0.5 for _ in range(period)]
            if all(pattern) or not any(pattern):
                pattern[0] = not pattern[0]  # avoid degenerate all-same patterns
            return PatternBehavior(pattern)
        return BiasedBehavior(0.5, rng.fork(5))


def generate_program(
    profile: WorkloadProfile,
    seed: int,
    name: str = "",
    suite: str = "",
) -> Program:
    """Convenience wrapper: one call from profile+seed to laid-out program."""
    return ProgramGenerator(profile, seed).generate(name=name, suite=suite)
