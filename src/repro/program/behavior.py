"""Branch behaviour models.

A static branch in a real program is not a coin flip: most are heavily
biased, loop backedges run a trip count then exit, some follow short
repeating patterns a history-based predictor can learn, and indirect
branches choose among a popularity-skewed target set.  Each static
branch in a synthetic program owns one behaviour object; the trace
executor consults it for every dynamic execution.

Behaviours are stateful (loop counters, pattern cursors) and carry their
own forked RNG, so regenerating the same program with the same seed
yields an identical dynamic trace.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.rng import DeterministicRng


class BranchBehavior:
    """Base class for conditional-branch direction behaviours."""

    def next_taken(self) -> bool:
        """Direction of the next dynamic execution of this branch."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore initial state (used when replaying a trace)."""

    @property
    def static_bias(self) -> float:
        """Long-run taken probability, used for calibration reporting."""
        raise NotImplementedError


class BiasedBehavior(BranchBehavior):
    """Independent Bernoulli draws with a fixed taken probability.

    With ``p_taken`` near 0 or 1 this models the *monotonic* branches
    that the XBC's promotion machinery (§3.8) targets: a 7-bit counter
    reaching saturation implies ≥99.2% bias.
    """

    def __init__(self, p_taken: float, rng: DeterministicRng) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError(f"p_taken out of range: {p_taken}")
        self.p_taken = p_taken
        self._rng = rng

    def next_taken(self) -> bool:
        return self._rng.random() < self.p_taken

    def reset(self) -> None:
        self._rng.reset()

    @property
    def static_bias(self) -> float:
        return self.p_taken


class LoopBehavior(BranchBehavior):
    """A loop backedge: taken until the trip count expires, then exits.

    Real loop trip counts are mostly constant per static loop (array
    bounds, fixed tile sizes) with occasional data-dependent deviation.
    We model that directly: each entry runs the loop's base trip count,
    except a *jitter_p* fraction of entries which redraw geometrically.
    The constant majority is what lets a long-history predictor learn
    short-loop exits, keeping overall accuracy in the realistic band.
    """

    def __init__(
        self,
        mean_trip: float,
        rng: DeterministicRng,
        max_trip: int = 4096,
        jitter_p: float = 0.2,
    ) -> None:
        if mean_trip < 1:
            raise ValueError(f"mean trip count must be >= 1, got {mean_trip}")
        self.mean_trip = mean_trip
        self.max_trip = max_trip
        self.jitter_p = jitter_p
        self.base_trip = max(1, round(mean_trip))
        self._rng = rng
        self._remaining: Optional[int] = None

    def _draw_trip(self) -> int:
        if self._rng.random() < self.jitter_p:
            return self._rng.geometric(self.mean_trip, lo=1, hi=self.max_trip)
        return self.base_trip

    def next_taken(self) -> bool:
        if self._remaining is None:
            self._remaining = self._draw_trip()
        if self._remaining > 1:
            self._remaining -= 1
            return True
        # Final iteration: fall out of the loop and re-arm for next entry.
        self._remaining = None
        return False

    def taken_run(self, cap: int) -> int:
        """Commit a run of up to *cap* consecutive taken outcomes.

        Equivalent to calling :meth:`next_taken` ``k`` times where all
        ``k`` calls return True — the trip count is drawn at the same
        point in the RNG stream — leaving the behaviour one outcome
        short of the loop exit when the run is not budget-capped.  The
        executor uses this to batch stable loop iterations.
        """
        if self._remaining is None:
            self._remaining = self._draw_trip()
        k = self._remaining - 1
        if k > cap:
            k = cap
        self._remaining -= k
        return k

    def reset(self) -> None:
        self._remaining = None
        self._rng.reset()

    @property
    def static_bias(self) -> float:
        # A loop with mean trip N is taken (N-1)/N of the time.
        return max(0.0, (self.mean_trip - 1.0) / self.mean_trip)


class PatternBehavior(BranchBehavior):
    """A deterministic repeating direction pattern.

    Short patterns (e.g. TTNT) are exactly what a gshare predictor's
    global history captures; including them keeps predictor accuracy in
    the realistic 90–96% band instead of being purely bias-driven.
    """

    def __init__(self, pattern: Sequence[bool]) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern: List[bool] = list(pattern)
        self._cursor = 0

    def next_taken(self) -> bool:
        taken = self.pattern[self._cursor]
        self._cursor = (self._cursor + 1) % len(self.pattern)
        return taken

    def reset(self) -> None:
        self._cursor = 0

    @property
    def static_bias(self) -> float:
        return sum(self.pattern) / len(self.pattern)


class IndirectBehavior:
    """Target selection for indirect jumps and indirect calls.

    Targets are drawn i.i.d. from a Zipf-skewed popularity distribution
    over the branch's static target set — one or two dominant targets
    plus a tail, which is the regime where an indirect predictor is
    useful but imperfect.
    """

    def __init__(
        self,
        targets: Sequence[int],
        rng: DeterministicRng,
        skew: float = 1.2,
    ) -> None:
        if not targets:
            raise ValueError("indirect branch needs at least one target")
        self.targets: List[int] = list(targets)
        self._rng = rng
        self._weights = rng.zipf_weights(len(self.targets), skew)
        self._pairs = list(zip(self.targets, self._weights))

    def next_target(self) -> int:
        """Target address of the next dynamic execution."""
        if len(self.targets) == 1:
            return self.targets[0]
        return self._rng.weighted_choice(self._pairs)

    def reset(self) -> None:
        """Rewind the target-selection stream."""
        self._rng.reset()

    @property
    def dominant_fraction(self) -> float:
        """Popularity of the most likely target."""
        return max(self._weights)
