"""Workload profiles for the three trace suites of the paper.

The paper evaluates 21 traces in three suites — SPECint95 (8), SYSmark32
for Windows 95 (8), and popular games (5).  We cannot ship those
proprietary traces, so each suite becomes a statistical *profile* that
the program generator samples.  The tunables were calibrated against the
statistics the paper itself reports (Figure 1 and §3.1/§3.2):

- average basic block     ≈ 7.7 uops,
- average extended block  ≈ 8.0 uops (8.5 quoted in §3.2),
- average XB w/ promotion ≈ 10.0 uops,
- average dual XB         ≈ 12.7 uops,

plus the qualitative suite characters the frontend literature records:
SPECint is loop-regular and predictable, SYSmark (Win95 office/OS mix)
has a large flat code footprint with frequent calls and indirect
dispatch, and games sit in between with hot numeric loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.common.errors import ConfigError

#: Canonical suite names, in the order the paper lists them.
SUITE_NAMES: Tuple[str, str, str] = ("specint", "sysmark", "games")


@dataclass(frozen=True)
class WorkloadProfile:
    """All tunables of the synthetic program generator.

    Every distribution the generator draws from is parameterised here so
    suites (and tests) can shape programs without touching generator
    code.
    """

    name: str = "default"

    # -- program shape -------------------------------------------------------
    num_functions: int = 60
    mean_blocks_per_function: float = 14.0
    min_blocks_per_function: int = 3
    max_blocks_per_function: int = 48
    max_call_depth: int = 6
    mean_callees_per_function: float = 2.5
    callee_popularity_skew: float = 1.1

    # -- block shape -----------------------------------------------------------
    mean_body_instrs: float = 4.6
    max_body_instrs: int = 20
    #: distribution of uops per non-branch instruction: (uops, weight)
    uops_per_instr: Tuple[Tuple[int, float], ...] = (
        (1, 0.70),
        (2, 0.21),
        (3, 0.06),
        (4, 0.03),
    )

    # -- terminator mix (drawn for every non-final block) ----------------------
    p_cond: float = 0.76
    p_jump: float = 0.08
    p_call: float = 0.12
    p_indirect: float = 0.03
    p_indirect_call: float = 0.01

    # -- loop structure ---------------------------------------------------------
    #: mean blocks between consecutive loops on a function's spine
    mean_loop_gap: float = 3.0
    #: mean loop-body length in blocks (excluding the backedge block)
    mean_loop_body: float = 3.0
    #: probability a loop of >=3 body blocks contains one nested inner loop
    p_nested_loop: float = 0.25
    #: probability an in-loop conditional is a monotonic "break" escape
    p_loop_escape: float = 0.15
    #: per-iteration probability that an escape branch actually fires
    escape_rate: float = 0.01
    mean_loop_trip: float = 9.0
    #: cap on any single static loop's mean trip count
    max_mean_trip: int = 48
    #: mixture over non-loop conditional behaviours:
    #: (kind, weight) where kind in {monotonic, biased, pattern, random}
    cond_mixture: Tuple[Tuple[str, float], ...] = (
        ("monotonic", 0.40),
        ("biased", 0.38),
        ("pattern", 0.12),
        ("random", 0.10),
    )
    monotonic_bias: float = 0.995  # taken prob (or 1-p) for monotonic branches
    biased_range: Tuple[float, float] = (0.80, 0.97)
    pattern_max_period: int = 6

    # -- indirect branches -------------------------------------------------------
    mean_indirect_targets: float = 4.0
    max_indirect_targets: int = 10
    indirect_skew: float = 1.2

    # -- jump shaping ----------------------------------------------------------
    max_forward_jump_blocks: int = 6  # bound on jump distance (limits dead code)
    max_backedge_span: int = 10       # bound on loop nesting distance
    #: probability an unconditional jump targets an existing join point
    #: (an if/else diamond re-converging) — the control-flow shape that
    #: produces same-suffix/different-prefix XBs (§3.3 case 3).
    p_join_jump: float = 0.6
    #: probability an if/else's then-arm ends with a jump over the else
    #: arm to a merge block (a full diamond).
    p_diamond: float = 0.35
    #: probability a switch's case blocks all jump to a common merge
    #: block ("break"), giving the same suffix many different prefixes.
    p_switch_merge: float = 0.6

    # -- layout ------------------------------------------------------------------
    #: mean random gap between functions (bytes).  Real binaries scatter
    #: hot code across a large address window (linkers, DLLs, padding);
    #: Poisson-like spacing recreates the set-index imbalance that makes
    #: associativity matter (Figure 10).
    mean_function_gap_bytes: float = 1200.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` for out-of-range tunables."""
        if self.num_functions < 2:
            raise ConfigError("need at least 2 functions (main + one callee)")
        if self.min_blocks_per_function < 2:
            raise ConfigError("functions need >= 2 blocks (body + ret)")
        if self.max_blocks_per_function < self.min_blocks_per_function:
            raise ConfigError("max_blocks_per_function < min_blocks_per_function")
        if self.max_call_depth < 1:
            raise ConfigError("max_call_depth must be >= 1")
        term_mix = (
            self.p_cond + self.p_jump + self.p_call
            + self.p_indirect + self.p_indirect_call
        )
        if abs(term_mix - 1.0) > 1e-6:
            raise ConfigError(f"terminator mix sums to {term_mix}, expected 1.0")
        if self.mean_loop_trip < 1.0:
            raise ConfigError("mean_loop_trip must be >= 1")
        if self.mean_loop_body < 1.0:
            raise ConfigError("mean_loop_body must be >= 1")
        if not 0.0 <= self.p_nested_loop <= 1.0:
            raise ConfigError("p_nested_loop out of range")
        if not 0.0 <= self.p_loop_escape <= 1.0:
            raise ConfigError("p_loop_escape out of range")
        if not 0.0 < self.escape_rate < 0.5:
            raise ConfigError("escape_rate must be in (0, 0.5)")
        weights = sum(w for _, w in self.cond_mixture)
        if abs(weights - 1.0) > 1e-6:
            raise ConfigError(f"cond mixture sums to {weights}, expected 1.0")
        if not 0.5 <= self.monotonic_bias < 1.0:
            raise ConfigError("monotonic_bias must be in [0.5, 1)")
        lo, hi = self.biased_range
        if not 0.0 < lo <= hi < 1.0:
            raise ConfigError("biased_range must satisfy 0 < lo <= hi < 1")

    def scaled(self, static_uops_target: int) -> "WorkloadProfile":
        """Return a copy whose function count targets a static footprint.

        The expected uops per block is roughly
        ``mean_body_instrs * E[uops/instr] + 1`` (terminator), so the
        function count is solved from the target and the per-function
        block mean.  This is how trace registries dial working-set size
        against cache budget.
        """
        mean_uops_per_instr = sum(u * w for u, w in self.uops_per_instr)
        uops_per_block = self.mean_body_instrs * mean_uops_per_instr + 1.3
        blocks_needed = static_uops_target / uops_per_block
        functions = max(4, round(blocks_needed / self.mean_blocks_per_function))
        return replace(self, num_functions=functions)


#: Per-suite profile presets.
_PROFILES: Dict[str, WorkloadProfile] = {
    # SPECint95: regular loops, predictable branches, moderate footprint.
    "specint": WorkloadProfile(
        name="specint",
        num_functions=56,
        mean_blocks_per_function=14.0,
        mean_body_instrs=5.7,
        p_cond=0.78,
        p_jump=0.07,
        p_call=0.11,
        p_indirect=0.03,
        p_indirect_call=0.01,
        mean_loop_gap=2.5,
        mean_loop_body=3.0,
        p_nested_loop=0.30,
        mean_loop_trip=9.0,
        cond_mixture=(
            ("monotonic", 0.46),
            ("biased", 0.38),
            ("pattern", 0.10),
            ("random", 0.06),
        ),
        max_call_depth=4,
        mean_function_gap_bytes=1100.0,
    ),
    # SYSmark32 / Win95: big flat footprint, short blocks, call- and
    # indirect-heavy (COM dispatch, DLL thunks), less predictable.
    "sysmark": WorkloadProfile(
        name="sysmark",
        num_functions=110,
        mean_blocks_per_function=11.0,
        mean_body_instrs=5.0,
        p_cond=0.72,
        p_jump=0.09,
        p_call=0.13,
        p_indirect=0.04,
        p_indirect_call=0.02,
        mean_loop_gap=4.5,
        mean_loop_body=2.5,
        p_nested_loop=0.15,
        mean_loop_trip=5.0,
        cond_mixture=(
            ("monotonic", 0.36),
            ("biased", 0.40),
            ("pattern", 0.12),
            ("random", 0.12),
        ),
        mean_indirect_targets=5.0,
        max_call_depth=5,
        mean_function_gap_bytes=2000.0,
    ),
    # Games: hot numeric inner loops, long blocks, strong bias, small
    # resident footprint.
    "games": WorkloadProfile(
        name="games",
        num_functions=36,
        mean_blocks_per_function=12.0,
        mean_body_instrs=6.0,
        p_cond=0.77,
        p_jump=0.07,
        p_call=0.12,
        p_indirect=0.03,
        p_indirect_call=0.01,
        mean_loop_gap=1.8,
        mean_loop_body=3.5,
        p_nested_loop=0.40,
        mean_loop_trip=13.0,
        cond_mixture=(
            ("monotonic", 0.52),
            ("biased", 0.35),
            ("pattern", 0.09),
            ("random", 0.04),
        ),
        max_call_depth=4,
        mean_function_gap_bytes=700.0,
    ),
}


def profile_for_suite(suite: str) -> WorkloadProfile:
    """The preset profile of a suite; raises :class:`ConfigError` if unknown."""
    try:
        return _PROFILES[suite]
    except KeyError:
        raise ConfigError(
            f"unknown suite {suite!r}; expected one of {', '.join(SUITE_NAMES)}"
        ) from None
