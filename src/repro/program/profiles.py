"""Workload profiles for the three trace suites of the paper.

The paper evaluates 21 traces in three suites — SPECint95 (8), SYSmark32
for Windows 95 (8), and popular games (5).  We cannot ship those
proprietary traces, so each suite becomes a statistical *profile* that
the program generator samples.  The tunables were calibrated against the
statistics the paper itself reports (Figure 1 and §3.1/§3.2):

- average basic block     ≈ 7.7 uops,
- average extended block  ≈ 8.0 uops (8.5 quoted in §3.2),
- average XB w/ promotion ≈ 10.0 uops,
- average dual XB         ≈ 12.7 uops,

plus the qualitative suite characters the frontend literature records:
SPECint is loop-regular and predictable, SYSmark (Win95 office/OS mix)
has a large flat code footprint with frequent calls and indirect
dispatch, and games sit in between with hot numeric loops.

Beyond the paper's three suites, the module registers a **server
family** (``server-oltp``, ``server-web``, ``server-micro``): the
multi-megabyte, deep-call-graph, indirect-heavy, flat-branch-bias
regime the paper never measures but the frontend literature
(FDIP-Revisited, Micro BTB) identifies as where decoupled frontends
collapse.  All profiles live in one registry —
:func:`registered_profiles` / :func:`profile_by_name` — that the trace
registry, the ``repro info`` report and the ``repro fuzz`` scenario
search share; registration validates, so a malformed profile fails at
definition time instead of deep inside the generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.common.errors import ConfigError

#: Canonical suite names, in the order the paper lists them.
SUITE_NAMES: Tuple[str, str, str] = ("specint", "sysmark", "games")

#: The server-class profile family (see module docstring).
SERVER_NAMES: Tuple[str, str, str] = (
    "server-oltp", "server-web", "server-micro"
)


@dataclass(frozen=True)
class WorkloadProfile:
    """All tunables of the synthetic program generator.

    Every distribution the generator draws from is parameterised here so
    suites (and tests) can shape programs without touching generator
    code.
    """

    name: str = "default"

    # -- program shape -------------------------------------------------------
    num_functions: int = 60
    mean_blocks_per_function: float = 14.0
    min_blocks_per_function: int = 3
    max_blocks_per_function: int = 48
    max_call_depth: int = 6
    mean_callees_per_function: float = 2.5
    callee_popularity_skew: float = 1.1

    # -- block shape -----------------------------------------------------------
    mean_body_instrs: float = 4.6
    max_body_instrs: int = 20
    #: distribution of uops per non-branch instruction: (uops, weight)
    uops_per_instr: Tuple[Tuple[int, float], ...] = (
        (1, 0.70),
        (2, 0.21),
        (3, 0.06),
        (4, 0.03),
    )

    # -- terminator mix (drawn for every non-final block) ----------------------
    p_cond: float = 0.76
    p_jump: float = 0.08
    p_call: float = 0.12
    p_indirect: float = 0.03
    p_indirect_call: float = 0.01

    # -- loop structure ---------------------------------------------------------
    #: mean blocks between consecutive loops on a function's spine
    mean_loop_gap: float = 3.0
    #: mean loop-body length in blocks (excluding the backedge block)
    mean_loop_body: float = 3.0
    #: probability a loop of >=3 body blocks contains one nested inner loop
    p_nested_loop: float = 0.25
    #: probability an in-loop conditional is a monotonic "break" escape
    p_loop_escape: float = 0.15
    #: per-iteration probability that an escape branch actually fires
    escape_rate: float = 0.01
    mean_loop_trip: float = 9.0
    #: cap on any single static loop's mean trip count
    max_mean_trip: int = 48
    #: mixture over non-loop conditional behaviours:
    #: (kind, weight) where kind in {monotonic, biased, pattern, random}
    cond_mixture: Tuple[Tuple[str, float], ...] = (
        ("monotonic", 0.40),
        ("biased", 0.38),
        ("pattern", 0.12),
        ("random", 0.10),
    )
    monotonic_bias: float = 0.995  # taken prob (or 1-p) for monotonic branches
    biased_range: Tuple[float, float] = (0.80, 0.97)
    pattern_max_period: int = 6

    # -- indirect branches -------------------------------------------------------
    mean_indirect_targets: float = 4.0
    max_indirect_targets: int = 10
    indirect_skew: float = 1.2

    # -- jump shaping ----------------------------------------------------------
    max_forward_jump_blocks: int = 6  # bound on jump distance (limits dead code)
    max_backedge_span: int = 10       # bound on loop nesting distance
    #: probability an unconditional jump targets an existing join point
    #: (an if/else diamond re-converging) — the control-flow shape that
    #: produces same-suffix/different-prefix XBs (§3.3 case 3).
    p_join_jump: float = 0.6
    #: probability an if/else's then-arm ends with a jump over the else
    #: arm to a merge block (a full diamond).
    p_diamond: float = 0.35
    #: probability a switch's case blocks all jump to a common merge
    #: block ("break"), giving the same suffix many different prefixes.
    p_switch_merge: float = 0.6

    # -- layout ------------------------------------------------------------------
    #: mean random gap between functions (bytes).  Real binaries scatter
    #: hot code across a large address window (linkers, DLLs, padding);
    #: Poisson-like spacing recreates the set-index imbalance that makes
    #: associativity matter (Figure 10).
    mean_function_gap_bytes: float = 1200.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` for out-of-range tunables.

        Called at profile registration and by the fuzzer before every
        candidate generation, so a malformed profile fails here with a
        parameter name instead of deep inside the generator.
        """
        if self.num_functions < 2:
            raise ConfigError("need at least 2 functions (main + one callee)")
        if self.min_blocks_per_function < 2:
            raise ConfigError("functions need >= 2 blocks (body + ret)")
        if self.max_blocks_per_function < self.min_blocks_per_function:
            raise ConfigError("max_blocks_per_function < min_blocks_per_function")
        if self.max_call_depth < 1:
            raise ConfigError("max_call_depth must be >= 1")
        # Every mean the generator feeds a geometric/Poisson draw must
        # be positive (gap means may be zero: "no gap" is meaningful).
        for name in (
            "mean_blocks_per_function", "mean_body_instrs",
            "mean_callees_per_function", "mean_loop_trip",
            "mean_loop_body", "mean_indirect_targets",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be > 0")
        for name in ("mean_loop_gap", "mean_function_gap_bytes"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        # Terminator mix: individually in [0, 1], summing to at most 1
        # (the generator normalizes by the actual sum, so a sub-unit
        # sum scales every weight up proportionally; a super-unit sum
        # is always a config bug).
        term_mix = 0.0
        for name in (
            "p_cond", "p_jump", "p_call", "p_indirect", "p_indirect_call"
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {p}")
            term_mix += p
        if term_mix <= 0.0:
            raise ConfigError("terminator mix sums to 0; nothing to draw")
        if term_mix > 1.0 + 1e-6:
            raise ConfigError(
                f"terminator mix sums to {term_mix}, expected <= 1.0"
            )
        if self.mean_loop_trip < 1.0:
            raise ConfigError("mean_loop_trip must be >= 1")
        if self.mean_loop_body < 1.0:
            raise ConfigError("mean_loop_body must be >= 1")
        if not 0.0 <= self.p_nested_loop <= 1.0:
            raise ConfigError("p_nested_loop out of range")
        if not 0.0 <= self.p_loop_escape <= 1.0:
            raise ConfigError("p_loop_escape out of range")
        if not 0.0 < self.escape_rate < 0.5:
            raise ConfigError("escape_rate must be in (0, 0.5)")
        if not self.uops_per_instr:
            raise ConfigError("uops_per_instr must be non-empty")
        for uops, weight in self.uops_per_instr:
            if uops < 1 or weight < 0:
                raise ConfigError(
                    "uops_per_instr entries need uops >= 1, weight >= 0"
                )
        weights = sum(w for _, w in self.cond_mixture)
        if abs(weights - 1.0) > 1e-6:
            raise ConfigError(f"cond mixture sums to {weights}, expected 1.0")
        if not 0.5 <= self.monotonic_bias < 1.0:
            raise ConfigError("monotonic_bias must be in [0.5, 1)")
        lo, hi = self.biased_range
        if not 0.0 < lo <= hi < 1.0:
            raise ConfigError("biased_range must satisfy 0 < lo <= hi < 1")
        # Remaining min <= max / positive-bound sanity checks.
        if self.max_body_instrs < 1:
            raise ConfigError("max_body_instrs must be >= 1")
        if self.max_indirect_targets < 2:
            raise ConfigError("max_indirect_targets must be >= 2")
        if self.max_mean_trip < 3:
            raise ConfigError("max_mean_trip must be >= 3")
        if self.pattern_max_period < 2:
            raise ConfigError("pattern_max_period must be >= 2")
        if self.max_forward_jump_blocks < 1:
            raise ConfigError("max_forward_jump_blocks must be >= 1")
        if self.max_backedge_span < 1:
            raise ConfigError("max_backedge_span must be >= 1")

    # -- derived shape statistics (estimates, no generation) -----------------

    def mean_uops_per_instr(self) -> float:
        """Expected uops of one non-branch instruction."""
        total = sum(w for _, w in self.uops_per_instr)
        return sum(u * w for u, w in self.uops_per_instr) / total

    def mean_block_uops(self) -> float:
        """Expected uops per basic block (body + terminator)."""
        return self.mean_body_instrs * self.mean_uops_per_instr() + 1.3

    def terminator_shares(self) -> Dict[str, float]:
        """Normalized terminator mix (the generator draws from this)."""
        raw = {
            "cond": self.p_cond,
            "jump": self.p_jump,
            "call": self.p_call,
            "indirect": self.p_indirect,
            "indirect_call": self.p_indirect_call,
        }
        total = sum(raw.values()) or 1.0
        return {name: p / total for name, p in raw.items()}

    def indirect_rate(self) -> float:
        """Share of block terminators that are indirect (jump or call)."""
        shares = self.terminator_shares()
        return shares["indirect"] + shares["indirect_call"]

    def estimated_static_uops(self) -> float:
        """Expected static footprint in uops at this function count."""
        return (
            self.num_functions
            * self.mean_blocks_per_function
            * self.mean_block_uops()
        )

    def scaled(self, static_uops_target: int) -> "WorkloadProfile":
        """Return a copy whose function count targets a static footprint.

        The expected uops per block is roughly
        ``mean_body_instrs * E[uops/instr] + 1`` (terminator), so the
        function count is solved from the target and the per-function
        block mean.  This is how trace registries dial working-set size
        against cache budget.
        """
        mean_uops_per_instr = sum(u * w for u, w in self.uops_per_instr)
        uops_per_block = self.mean_body_instrs * mean_uops_per_instr + 1.3
        blocks_needed = static_uops_target / uops_per_block
        functions = max(4, round(blocks_needed / self.mean_blocks_per_function))
        return replace(self, num_functions=functions)


#: Per-suite profile presets.
_PROFILES: Dict[str, WorkloadProfile] = {
    # SPECint95: regular loops, predictable branches, moderate footprint.
    "specint": WorkloadProfile(
        name="specint",
        num_functions=56,
        mean_blocks_per_function=14.0,
        mean_body_instrs=5.7,
        p_cond=0.78,
        p_jump=0.07,
        p_call=0.11,
        p_indirect=0.03,
        p_indirect_call=0.01,
        mean_loop_gap=2.5,
        mean_loop_body=3.0,
        p_nested_loop=0.30,
        mean_loop_trip=9.0,
        cond_mixture=(
            ("monotonic", 0.46),
            ("biased", 0.38),
            ("pattern", 0.10),
            ("random", 0.06),
        ),
        max_call_depth=4,
        mean_function_gap_bytes=1100.0,
    ),
    # SYSmark32 / Win95: big flat footprint, short blocks, call- and
    # indirect-heavy (COM dispatch, DLL thunks), less predictable.
    "sysmark": WorkloadProfile(
        name="sysmark",
        num_functions=110,
        mean_blocks_per_function=11.0,
        mean_body_instrs=5.0,
        p_cond=0.72,
        p_jump=0.09,
        p_call=0.13,
        p_indirect=0.04,
        p_indirect_call=0.02,
        mean_loop_gap=4.5,
        mean_loop_body=2.5,
        p_nested_loop=0.15,
        mean_loop_trip=5.0,
        cond_mixture=(
            ("monotonic", 0.36),
            ("biased", 0.40),
            ("pattern", 0.12),
            ("random", 0.12),
        ),
        mean_indirect_targets=5.0,
        max_call_depth=5,
        mean_function_gap_bytes=2000.0,
    ),
    # Games: hot numeric inner loops, long blocks, strong bias, small
    # resident footprint.
    "games": WorkloadProfile(
        name="games",
        num_functions=36,
        mean_blocks_per_function=12.0,
        mean_body_instrs=6.0,
        p_cond=0.77,
        p_jump=0.07,
        p_call=0.12,
        p_indirect=0.03,
        p_indirect_call=0.01,
        mean_loop_gap=1.8,
        mean_loop_body=3.5,
        p_nested_loop=0.40,
        mean_loop_trip=13.0,
        cond_mixture=(
            ("monotonic", 0.52),
            ("biased", 0.35),
            ("pattern", 0.09),
            ("random", 0.04),
        ),
        max_call_depth=4,
        mean_function_gap_bytes=700.0,
    ),
}


#: The server family: the regime the paper's suites never reach.
#: Common character — multi-megabyte instruction working sets (the
#: registry scales them to the targets in :data:`PROFILE_STATIC_UOPS`),
#: deep call chains through many small functions, high indirect and
#: indirect-call rates (dispatch tables, vtables, RPC demux), sparse
#: short-trip loops, and a *flat* branch-bias histogram: most
#: conditionals live in the 50–85% band instead of the paper suites'
#: 0/100% spikes.  Calibrated by tests/program/test_server_profiles.py.
_SERVER_PROFILES: Dict[str, WorkloadProfile] = {
    # OLTP database engine: B-tree descent, latch/lock checks, row
    # format dispatch.  Deep chains, data-dependent branches.
    "server-oltp": WorkloadProfile(
        name="server-oltp",
        num_functions=3400,
        mean_blocks_per_function=9.0,
        min_blocks_per_function=3,
        max_blocks_per_function=40,
        max_call_depth=12,
        mean_callees_per_function=3.5,
        callee_popularity_skew=1.0,
        mean_body_instrs=4.2,
        p_cond=0.62,
        p_jump=0.09,
        p_call=0.17,
        p_indirect=0.06,
        p_indirect_call=0.06,
        mean_loop_gap=6.0,
        mean_loop_body=2.0,
        p_nested_loop=0.08,
        mean_loop_trip=3.5,
        cond_mixture=(
            ("monotonic", 0.12),
            ("biased", 0.36),
            ("pattern", 0.10),
            ("random", 0.42),
        ),
        monotonic_bias=0.98,
        biased_range=(0.55, 0.85),
        mean_indirect_targets=6.0,
        max_indirect_targets=10,
        indirect_skew=0.8,
        mean_function_gap_bytes=450.0,
    ),
    # Web/application server: request parse -> route -> handler -> render.
    # Largest footprint of the family, slightly shallower chains.
    "server-web": WorkloadProfile(
        name="server-web",
        num_functions=3800,
        mean_blocks_per_function=11.0,
        min_blocks_per_function=3,
        max_blocks_per_function=44,
        max_call_depth=9,
        mean_callees_per_function=3.0,
        callee_popularity_skew=1.05,
        mean_body_instrs=4.8,
        p_cond=0.66,
        p_jump=0.10,
        p_call=0.15,
        p_indirect=0.05,
        p_indirect_call=0.04,
        mean_loop_gap=5.0,
        mean_loop_body=2.5,
        p_nested_loop=0.10,
        mean_loop_trip=4.5,
        cond_mixture=(
            ("monotonic", 0.18),
            ("biased", 0.38),
            ("pattern", 0.12),
            ("random", 0.32),
        ),
        monotonic_bias=0.98,
        biased_range=(0.60, 0.88),
        mean_indirect_targets=5.0,
        max_indirect_targets=10,
        indirect_skew=1.0,
        mean_function_gap_bytes=520.0,
    ),
    # Microservice RPC stack: deserialize -> dispatch -> serialize.
    # Deepest chains, highest indirect-call rate, smallest blocks.
    "server-micro": WorkloadProfile(
        name="server-micro",
        num_functions=3300,
        mean_blocks_per_function=7.0,
        min_blocks_per_function=3,
        max_blocks_per_function=32,
        max_call_depth=14,
        mean_callees_per_function=4.0,
        callee_popularity_skew=0.9,
        mean_body_instrs=3.6,
        p_cond=0.58,
        p_jump=0.08,
        p_call=0.19,
        p_indirect=0.07,
        p_indirect_call=0.08,
        mean_loop_gap=7.0,
        mean_loop_body=1.8,
        p_nested_loop=0.05,
        mean_loop_trip=3.0,
        cond_mixture=(
            ("monotonic", 0.10),
            ("biased", 0.34),
            ("pattern", 0.12),
            ("random", 0.44),
        ),
        monotonic_bias=0.98,
        biased_range=(0.52, 0.82),
        mean_indirect_targets=7.0,
        max_indirect_targets=12,
        indirect_skew=0.7,
        mean_function_gap_bytes=380.0,
    ),
}

#: Native static-footprint target (uops) per registered profile.  The
#: suite values mirror the trace registry's scaled defaults; the server
#: values put the *code* footprint in the multi-megabyte band the
#: family models (~1.4 uops/instr, ~3.8 bytes/instr: 300k static uops
#: is roughly 0.8 MB of instructions plus inter-function padding).
PROFILE_STATIC_UOPS: Dict[str, int] = {
    "specint": 9000,
    "sysmark": 16000,
    "games": 6000,
    "server-oltp": 280_000,
    "server-web": 340_000,
    "server-micro": 230_000,
}


def _register_builtins() -> Dict[str, WorkloadProfile]:
    registry: Dict[str, WorkloadProfile] = {}
    for name, profile in {**_PROFILES, **_SERVER_PROFILES}.items():
        profile.validate()
        registry[name] = profile
    return registry


_REGISTERED: Dict[str, WorkloadProfile] = _register_builtins()

#: Every registered profile name: the paper suites then the server family.
PROFILE_NAMES: Tuple[str, ...] = SUITE_NAMES + SERVER_NAMES


def registered_profiles() -> Dict[str, WorkloadProfile]:
    """Snapshot of the profile registry (name -> profile)."""
    return dict(_REGISTERED)


def register_profile(
    profile: WorkloadProfile, static_uops: int | None = None
) -> WorkloadProfile:
    """Add *profile* to the registry, validating it first.

    Tests and experiments use this to introduce ad-hoc profiles; a
    name collision or an invalid profile raises :class:`ConfigError`
    immediately rather than at first generation.
    """
    profile.validate()
    if not profile.name:
        raise ConfigError("profile needs a non-empty name")
    if profile.name in _REGISTERED:
        raise ConfigError(f"profile {profile.name!r} is already registered")
    if static_uops is not None:
        if static_uops < 100:
            raise ConfigError("static_uops target must be >= 100")
        PROFILE_STATIC_UOPS[profile.name] = static_uops
    _REGISTERED[profile.name] = profile
    return profile


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up any registered profile (suite or server family)."""
    try:
        return _REGISTERED[name]
    except KeyError:
        raise ConfigError(
            f"unknown profile {name!r}; registered: "
            f"{', '.join(sorted(_REGISTERED))}"
        ) from None


def profile_for_suite(suite: str) -> WorkloadProfile:
    """The preset profile of a suite; raises :class:`ConfigError` if unknown."""
    if suite not in SUITE_NAMES:
        raise ConfigError(
            f"unknown suite {suite!r}; expected one of {', '.join(SUITE_NAMES)}"
        )
    return _PROFILES[suite]
