"""Synthetic program substrate.

The paper evaluates on 21 proprietary x86 traces (SPECint95, SYSmark32,
games).  We replace those with synthetic programs: control-flow graphs
generated from per-suite statistical profiles, laid out into a
:class:`~repro.isa.image.ProgramImage`, with a branch-*behaviour* model
attached to every conditional/indirect branch so that a trace-driven
executor can produce dynamic instruction streams with realistic
block-length, bias, and working-set statistics.
"""

from repro.program.cfg import BasicBlockSpec, FunctionSpec, Program, LayoutBlock, TerminatorKind
from repro.program.behavior import (
    BranchBehavior,
    BiasedBehavior,
    LoopBehavior,
    PatternBehavior,
    IndirectBehavior,
)
from repro.program.profiles import WorkloadProfile, profile_for_suite, SUITE_NAMES
from repro.program.generator import ProgramGenerator, generate_program

__all__ = [
    "BasicBlockSpec",
    "FunctionSpec",
    "Program",
    "LayoutBlock",
    "TerminatorKind",
    "BranchBehavior",
    "BiasedBehavior",
    "LoopBehavior",
    "PatternBehavior",
    "IndirectBehavior",
    "WorkloadProfile",
    "profile_for_suite",
    "SUITE_NAMES",
    "ProgramGenerator",
    "generate_program",
]
