"""BBTC configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitutils import log2_exact
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class BbtcConfig:
    """Geometry of the block-based trace cache.

    ``total_uops`` budgets the *block cache* data array (the uop
    storage, comparable to the TC/XBC budgets); the trace table is a
    separate pointer store, as in [Blac99].
    """

    total_uops: int = 8192
    block_uops: int = 8          # block-cache line size (one basic block)
    assoc: int = 4               # block-cache associativity
    table_entries: int = 2048    # trace-table entries
    table_assoc: int = 4
    blocks_per_trace: int = 4    # pointers per trace-table entry
    max_cond_branches: int = 3

    @property
    def num_sets(self) -> int:
        """Block-cache sets implied by the uop budget."""
        return self.total_uops // (self.block_uops * self.assoc)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent geometry."""
        if self.block_uops < 2:
            raise ConfigError("block_uops must be >= 2")
        if self.total_uops % (self.block_uops * self.assoc):
            raise ConfigError("total_uops must be divisible by block_uops*assoc")
        try:
            log2_exact(self.num_sets)
            log2_exact(self.table_entries // self.table_assoc)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc
        if self.table_entries % self.table_assoc:
            raise ConfigError("table_entries must be divisible by table_assoc")
        if self.blocks_per_trace < 1:
            raise ConfigError("blocks_per_trace must be >= 1")
        if self.max_cond_branches < 1:
            raise ConfigError("max_cond_branches must be >= 1")
