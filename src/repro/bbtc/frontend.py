"""BBTC frontend: block cache + trace table of block pointers.

Build mode segments the uop stream into basic blocks (ending on any
branch or the block-size quota, identified by their *start* IP),
installs each block in the block cache, and records traces of up to
``blocks_per_trace`` pointers in the trace table.  Delivery mode walks
a trace-table entry, fetching each pointed-to block from the block
cache and checking the embedded conditional directions against gshare
and the actual path, exactly as the TC model does at uop granularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.bbtc.config import BbtcConfig
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import Instruction, InstrKind
from repro.trace.record import Trace


class _Block:
    """A basic block in the block cache."""

    __slots__ = ("start_ip", "entries", "uops")

    def __init__(self, entries: List[Tuple[Instruction, bool]]) -> None:
        self.start_ip = entries[0][0].ip
        self.entries = entries
        self.uops = sum(instr.num_uops for instr, _ in entries)


class _SetAssoc:
    """Tiny generic set-associative store keyed by IP."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self._mask = num_sets - 1
        self._sets: List[Dict[int, object]] = [{} for _ in range(num_sets)]
        self._stamps: List[Dict[int, int]] = [{} for _ in range(num_sets)]
        self._clock = 0

    def get(self, key: int):
        index = (key >> 1) & self._mask
        value = self._sets[index].get(key)
        if value is not None:
            self._clock += 1
            self._stamps[index][key] = self._clock
        return value

    def put(self, key: int, value: object) -> None:
        index = (key >> 1) & self._mask
        entries = self._sets[index]
        stamps = self._stamps[index]
        self._clock += 1
        if key not in entries and len(entries) >= self.assoc:
            victim = min(stamps, key=stamps.get)
            del entries[victim]
            del stamps[victim]
        entries[key] = value
        stamps[key] = self._clock


class BbtcFrontend(FrontendModel):
    """Block-based trace cache frontend."""

    name = "bbtc"

    def __init__(
        self,
        config: Optional[FrontendConfig] = None,
        bbtc_config: Optional[BbtcConfig] = None,
    ) -> None:
        super().__init__(config if config is not None else FrontendConfig())
        bbtc_config = bbtc_config if bbtc_config is not None else BbtcConfig()
        bbtc_config.validate()
        self.bbtc_config = bbtc_config

    def run(self, trace: Trace) -> FrontendStats:
        """Simulate the trace through block cache + trace table."""
        config = self.config
        bc = self.bbtc_config
        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        flow = UopFlow(config, stats)
        gshare = GsharePredictor(config.gshare_history_bits, config.gshare_entries)
        rsb: ReturnStackBuffer = ReturnStackBuffer(config.rsb_depth)
        indirect: IndirectPredictor = IndirectPredictor(
            config.indirect_entries, config.indirect_history_bits
        )
        engine = BuildEngine(
            config=config,
            stats=stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=gshare,
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=rsb,
            indirect=indirect,
        )
        blocks = _SetAssoc(bc.num_sets, bc.assoc)
        table = _SetAssoc(bc.table_entries // bc.table_assoc, bc.table_assoc)

        ips = trace.ips
        takens = trace.takens
        instr_table = trace.instr_table
        total = len(trace)
        pos = 0
        delivery = False
        # fill state
        pending_block: List[Tuple[Instruction, bool]] = []
        pending_uops = 0
        pending_trace: List[int] = []  # block start IPs
        pending_conds = 0

        def close_block() -> None:
            nonlocal pending_block, pending_uops, pending_conds
            if not pending_block:
                return
            block = _Block(pending_block)
            blocks.put(block.start_ip, block)
            if len(pending_trace) < bc.blocks_per_trace:
                pending_trace.append(block.start_ip)
            pending_block = []
            pending_uops = 0

        def close_trace() -> None:
            nonlocal pending_trace, pending_conds
            if pending_trace:
                table.put(pending_trace[0], tuple(pending_trace))
                stats.blocks_built += 1
            pending_trace = []
            pending_conds = 0

        max_build_uops = 4 * config.decode_width
        max_fetch_uops = bc.blocks_per_trace * bc.block_uops

        while pos < total:
            stats.cycles += 1
            flow.drain()

            if delivery:
                stats.delivery_cycles += 1
                if not flow.can_accept(max_fetch_uops):
                    continue
                stats.structure_lookups += 1
                entry = table.get(ips[pos])
                if entry is None:
                    delivery = False
                    stats.switches_to_build += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)
                    continue
                uops, pos, complete = self._consume_trace(
                    entry, blocks, trace, pos, stats, gshare, rsb, indirect
                )
                if uops == 0 and not complete:
                    # first block pointer missed in the block cache
                    delivery = False
                    stats.switches_to_build += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)
                    continue
                stats.structure_hits += 1
                stats.structure_fetch_cycles += 1
                stats.uops_from_structure += uops
                flow.push(uops)
            else:
                stats.build_cycles += 1
                if not flow.can_accept(max_build_uops):
                    continue
                pos, cycle = engine.fetch_cycle(trace, pos)
                stats.uops_from_ic += cycle.uops
                flow.push(cycle.uops)
                for cause, cycles in cycle.penalties.items():
                    stats.add_penalty(cause, cycles)
                closed_any = False
                for i in range(cycle.start, cycle.end):
                    instr = instr_table[ips[i]]
                    if (
                        pending_block
                        and pending_uops + instr.num_uops > bc.block_uops
                    ):
                        close_block()
                        if len(pending_trace) >= bc.blocks_per_trace:
                            close_trace()
                            closed_any = True
                    pending_block.append((instr, bool(takens[i])))
                    pending_uops += instr.num_uops
                    ends_block = (
                        instr.kind.is_branch
                        or pending_uops >= bc.block_uops
                    )
                    if instr.kind is InstrKind.COND_BRANCH:
                        pending_conds += 1
                    if ends_block:
                        close_block()
                        end_trace = (
                            len(pending_trace) >= bc.blocks_per_trace
                            or pending_conds >= bc.max_cond_branches
                            or instr.kind.is_indirect
                        )
                        if end_trace:
                            close_trace()
                            closed_any = True
                if (
                    closed_any
                    and pos < total
                    and table.get(ips[pos]) is not None
                ):
                    delivery = True
                    pending_block = []
                    pending_uops = 0
                    pending_trace = []
                    pending_conds = 0
                    stats.switches_to_delivery += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)

        flow.drain_all()
        stats.verify_conservation(trace.total_uops)
        return stats

    # ------------------------------------------------------------------

    def _consume_trace(
        self,
        entry: Tuple[int, ...],
        blocks: _SetAssoc,
        trace: Trace,
        pos: int,
        stats: FrontendStats,
        gshare: GsharePredictor,
        rsb: ReturnStackBuffer,
        indirect: IndirectPredictor,
    ) -> Tuple[int, int, bool]:
        """Fetch the pointed-to blocks against the actual path.

        Returns (uops delivered, new position, walked-to-end flag).
        """
        config = self.config
        ips = trace.ips
        takens = trace.takens
        next_ips = trace.next_ips
        total = len(ips)
        uops = 0
        consumed = 0
        for block_ip in entry:
            index = pos + consumed
            if index >= total or ips[index] != block_ip:
                return uops, pos + consumed, False
            block = blocks.get(block_ip)
            if block is None:
                return uops, pos + consumed, False  # pointer into evicted block
            diverged = False
            for instr, recorded_taken in block.entries:
                index = pos + consumed
                if index >= total:
                    return uops, pos + consumed, False
                if ips[index] != instr.ip:
                    return uops, pos + consumed, False
                consumed += 1
                uops += instr.num_uops
                kind = instr.kind
                if kind is InstrKind.COND_BRANCH:
                    taken = bool(takens[index])
                    stats.cond_predictions += 1
                    if not gshare.update(instr.ip, taken):
                        stats.cond_mispredicts += 1
                        stats.add_penalty("mispredict", config.mispredict_penalty)
                        return uops, pos + consumed, False
                    if taken != recorded_taken:
                        diverged = True
                        break
                elif kind is InstrKind.CALL:
                    rsb.push(instr.next_ip)
                elif kind is InstrKind.INDIRECT_CALL:
                    rsb.push(instr.next_ip)
                    stats.indirect_predictions += 1
                    nxt = next_ips[index]
                    if not indirect.update(instr.ip, nxt, nxt):
                        stats.indirect_mispredicts += 1
                        stats.add_penalty("mispredict", config.mispredict_penalty)
                elif kind is InstrKind.INDIRECT_JUMP:
                    stats.indirect_predictions += 1
                    nxt = next_ips[index]
                    if not indirect.update(instr.ip, nxt, nxt):
                        stats.indirect_mispredicts += 1
                        stats.add_penalty("mispredict", config.mispredict_penalty)
                elif kind is InstrKind.RETURN:
                    stats.return_predictions += 1
                    if rsb.pop() != next_ips[index]:
                        stats.return_mispredicts += 1
                        stats.add_penalty("mispredict", config.mispredict_penalty)
            if diverged:
                return uops, pos + consumed, False
        return uops, pos + consumed, True
