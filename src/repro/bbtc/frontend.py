"""BBTC frontend: block cache + trace table of block pointers.

Build mode segments the uop stream into basic blocks (ending on any
branch or the block-size quota, identified by their *start* IP),
installs each block in the block cache, and records traces of up to
``blocks_per_trace`` pointers in the trace table.  Delivery mode walks
a trace-table entry, fetching each pointed-to block from the block
cache and checking the embedded conditional directions against gshare
and the actual path, exactly as the TC model does at uop granularity.

Two implementations share this class: ``_run_flat`` (default) is one
fused loop over the columnar trace arrays with inlined predictors and
tuple-payload blocks, plus an XBC-style queue-stall fast-forward;
``_run_reference`` is the original object-per-cycle code, kept behind
``REPRO_REFERENCE_FRONTEND=1`` as the behavioural oracle.  Both
produce bit-identical :class:`FrontendStats`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.bbtc.config import BbtcConfig
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine, reference_frontends_enabled
from repro.frontend.config import FrontendConfig
from repro.frontend.flat_engine import make_flat_predictors
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import (
    CODE_CALL,
    CODE_COND_BRANCH,
    CODE_INDIRECT_CALL,
    CODE_INDIRECT_JUMP,
    CODE_JUMP,
    CODE_RETURN,
    Instruction,
    InstrKind,
)
from repro.trace.record import Trace


class _Block:
    """A basic block in the block cache."""

    __slots__ = ("start_ip", "entries", "uops")

    def __init__(self, entries: List[Tuple[Instruction, bool]]) -> None:
        self.start_ip = entries[0][0].ip
        self.entries = entries
        self.uops = sum(instr.num_uops for instr, _ in entries)


class _SetAssoc:
    """Tiny generic set-associative store keyed by IP."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self._mask = num_sets - 1
        self._sets: List[Dict[int, object]] = [{} for _ in range(num_sets)]
        self._stamps: List[Dict[int, int]] = [{} for _ in range(num_sets)]
        self._clock = 0

    def get(self, key: int):
        index = (key >> 1) & self._mask
        value = self._sets[index].get(key)
        if value is not None:
            self._clock += 1
            self._stamps[index][key] = self._clock
        return value

    def put(self, key: int, value: object) -> None:
        index = (key >> 1) & self._mask
        entries = self._sets[index]
        stamps = self._stamps[index]
        self._clock += 1
        if key not in entries and len(entries) >= self.assoc:
            victim = min(stamps, key=stamps.get)
            del entries[victim]
            del stamps[victim]
        entries[key] = value
        stamps[key] = self._clock


class BbtcFrontend(FrontendModel):
    """Block-based trace cache frontend."""

    name = "bbtc"

    def __init__(
        self,
        config: Optional[FrontendConfig] = None,
        bbtc_config: Optional[BbtcConfig] = None,
    ) -> None:
        super().__init__(config if config is not None else FrontendConfig())
        bbtc_config = bbtc_config if bbtc_config is not None else BbtcConfig()
        bbtc_config.validate()
        self.bbtc_config = bbtc_config

    def run(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        """Simulate the trace through block cache + trace table."""
        if reference_frontends_enabled():
            return self._run_reference(trace, cycle_log)
        return self._run_flat(trace, cycle_log)

    # ------------------------------------------------------------------
    # flat path
    # ------------------------------------------------------------------

    def _run_flat(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        config = self.config
        bc = self.bbtc_config
        ips, takens, next_ips, kinds, nuops, snexts = trace.hot_columns()
        total = len(ips)
        fp = make_flat_predictors(config)

        # predictors, hoisted
        g_counters = fp.g_counters
        g_imask = fp.g_imask
        g_hmask = fp.g_hmask
        g_hist = 0
        b_tags = fp.b_tags
        b_targets = fp.b_targets
        b_stamps = fp.b_stamps
        b_assoc = fp.b_assoc
        b_set_mask = fp.b_set_mask
        b_clock = 0
        r_slots = fp.r_slots
        r_depth = fp.r_depth
        r_top = 0
        r_count = 0
        i_tags = fp.i_tags
        i_targets = fp.i_targets
        i_imask = fp.i_imask
        i_hmask = fp.i_hmask
        i_hist = 0
        ic_sets = fp.ic_sets
        ic_set_mask = fp.ic_set_mask
        ic_offset = fp.ic_offset_bits
        icache_assoc = fp.ic_assoc
        ic_clock = 0

        # block cache: set -> {start_ip: (entries, uops, stamp)} with
        # entry = (ip, taken, kind, nuops, snext); trace table:
        # set -> {first_block_ip: (block_ip_tuple, stamp)}.  Each store
        # keeps its own LRU clock, as the reference _SetAssoc does.
        bb_sets: List[dict] = [{} for _ in range(bc.num_sets)]
        bb_mask = bc.num_sets - 1
        bb_assoc = bc.assoc
        bb_clock = 0
        table_sets_n = bc.table_entries // bc.table_assoc
        tb_sets: List[dict] = [{} for _ in range(table_sets_n)]
        tb_mask = table_sets_n - 1
        tb_assoc = bc.table_assoc
        tb_clock = 0
        block_quota = bc.block_uops
        blocks_per_trace = bc.blocks_per_trace
        max_conds = bc.max_cond_branches

        # config scalars
        width = config.renamer_width
        depth = config.uop_queue_depth
        decode_width = config.decode_width
        fetch_block = config.fetch_block_bytes
        ic_lat = config.ic_miss_latency
        misp_pen = config.mispredict_penalty
        bubble = config.taken_branch_bubble
        btb_pen = config.btb_miss_penalty
        mode_pen = config.mode_switch_penalty
        max_build = 4 * decode_width
        max_fetch = blocks_per_trace * block_quota
        branch_floor = CODE_COND_BRANCH
        c_jump = CODE_JUMP
        c_ijump = CODE_INDIRECT_JUMP
        c_call = CODE_CALL
        c_icall = CODE_INDIRECT_CALL
        c_ret = CODE_RETURN

        # counters
        cycles = 0
        build_cycles = 0
        delivery_cycles = 0
        retired = 0
        occ = 0
        from_ic = 0
        from_structure = 0
        fetch_cycles_s = 0
        s_lookups = s_hits = 0
        blocks_built = 0
        sw_deliver = sw_build = 0
        cond_pred = cond_misp = ind_pred = ind_misp = 0
        ret_pred = ret_misp = 0
        ic_lookups = ic_misses = 0
        pen: dict = {}
        pos = 0
        delivery = False
        # fill state
        pending_block: list = []    # [(ip, taken, kind, nu, snext), ...]
        pending_uops = 0
        pending_trace: list = []    # block start IPs
        pending_conds = 0
        logging = cycle_log is not None

        def close_block() -> None:
            nonlocal pending_block, pending_uops, bb_clock
            if not pending_block:
                return
            start_ip = pending_block[0][0]
            bucket = bb_sets[(start_ip >> 1) & bb_mask]
            bb_clock += 1
            if start_ip not in bucket and len(bucket) >= bb_assoc:
                victim = min(bucket, key=lambda k: bucket[k][2])
                del bucket[victim]
            bucket[start_ip] = (tuple(pending_block), pending_uops, bb_clock)
            if len(pending_trace) < blocks_per_trace:
                pending_trace.append(start_ip)
            pending_block = []
            pending_uops = 0

        def close_trace() -> None:
            nonlocal pending_trace, pending_conds, tb_clock, blocks_built
            if pending_trace:
                key = pending_trace[0]
                bucket = tb_sets[(key >> 1) & tb_mask]
                tb_clock += 1
                if key not in bucket and len(bucket) >= tb_assoc:
                    victim = min(bucket, key=lambda k: bucket[k][1])
                    del bucket[victim]
                bucket[key] = (tuple(pending_trace), tb_clock)
                blocks_built += 1
            pending_trace = []
            pending_conds = 0

        while pos < total:
            cycles += 1
            if occ:
                t = occ if occ < width else width
                occ -= t
                retired += t

            if delivery:
                delivery_cycles += 1
                room = depth - occ
                if room < max_fetch:
                    if logging:
                        cycle_log.append(0)
                        continue
                    # Queue-stall fast-forward: cycles until a trace
                    # fits are pure full-width drains (cycle-exact,
                    # see the XBC delivery loop).
                    extra = (max_fetch - room + width - 1) // width - 1
                    if extra > 0 and occ >= extra * width:
                        cycles += extra
                        retired += extra * width
                        occ -= extra * width
                        delivery_cycles += extra
                    continue
                s_lookups += 1
                ip0 = ips[pos]
                tbucket = tb_sets[(ip0 >> 1) & tb_mask]
                tentry = tbucket.get(ip0)
                if tentry is None:
                    delivery = False
                    sw_build += 1
                    if mode_pen > 0:
                        cycles += mode_pen
                        pen["mode_switch"] = pen.get("mode_switch", 0) + mode_pen
                    if logging:
                        cycle_log.append(0)
                    continue
                tb_clock += 1
                tbucket[ip0] = (tentry[0], tb_clock)
                # ---- walk the pointed-to blocks against the path ----
                uops = 0
                complete = True
                for block_ip in tentry[0]:
                    if pos >= total or ips[pos] != block_ip:
                        complete = False
                        break
                    bbucket = bb_sets[(block_ip >> 1) & bb_mask]
                    block = bbucket.get(block_ip)
                    if block is None:
                        complete = False  # pointer into evicted block
                        break
                    bb_clock += 1
                    bbucket[block_ip] = (block[0], block[1], bb_clock)
                    diverged = False
                    for ip, rec_taken, k, nu, snext in block[0]:
                        if pos >= total or ips[pos] != ip:
                            complete = False
                            break
                        i = pos
                        pos += 1
                        uops += nu
                        if k < branch_floor:
                            continue
                        if k == branch_floor:  # conditional
                            tk = takens[i]
                            cond_pred += 1
                            gi = ((ip >> 1) ^ g_hist) & g_imask
                            c = g_counters[gi]
                            if tk:
                                if c < 3:
                                    g_counters[gi] = c + 1
                                g_hist = ((g_hist << 1) | 1) & g_hmask
                                if c < 2:
                                    cond_misp += 1
                                    if misp_pen > 0:
                                        cycles += misp_pen
                                        pen["mispredict"] = (
                                            pen.get("mispredict", 0) + misp_pen
                                        )
                                    complete = False
                                    break
                            else:
                                if c > 0:
                                    g_counters[gi] = c - 1
                                g_hist = (g_hist << 1) & g_hmask
                                if c >= 2:
                                    cond_misp += 1
                                    if misp_pen > 0:
                                        cycles += misp_pen
                                        pen["mispredict"] = (
                                            pen.get("mispredict", 0) + misp_pen
                                        )
                                    complete = False
                                    break
                            if tk != rec_taken:
                                diverged = True
                                break
                        elif k == c_call:
                            if r_count < r_depth:
                                r_count += 1
                            r_slots[r_top] = snext
                            r_top += 1
                            if r_top == r_depth:
                                r_top = 0
                        elif k == c_icall or k == c_ijump:
                            if k == c_icall:
                                if r_count < r_depth:
                                    r_count += 1
                                r_slots[r_top] = snext
                                r_top += 1
                                if r_top == r_depth:
                                    r_top = 0
                            ind_pred += 1
                            nxt = next_ips[i]
                            ii = ((ip >> 1) ^ (i_hist << 2)) & i_imask
                            hit = i_tags[ii] == ip and i_targets[ii] == nxt
                            i_tags[ii] = ip
                            i_targets[ii] = nxt
                            mixed = (nxt ^ (nxt >> 4) ^ (nxt >> 9)) & 0xF
                            i_hist = ((i_hist << 2) ^ mixed) & i_hmask
                            if not hit:
                                ind_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                        elif k == c_ret:
                            ret_pred += 1
                            if r_count == 0:
                                predicted = -1
                            else:
                                r_top -= 1
                                if r_top < 0:
                                    r_top = r_depth - 1
                                r_count -= 1
                                predicted = r_slots[r_top]
                            if predicted != next_ips[i]:
                                ret_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                        # direct JUMP: embedded target, no action
                    if diverged:
                        complete = False
                        break
                    if not complete:
                        break
                if uops == 0 and not complete:
                    # first block pointer missed in the block cache
                    delivery = False
                    sw_build += 1
                    if mode_pen > 0:
                        cycles += mode_pen
                        pen["mode_switch"] = pen.get("mode_switch", 0) + mode_pen
                    if logging:
                        cycle_log.append(0)
                    continue
                s_hits += 1
                fetch_cycles_s += 1
                from_structure += uops
                occ += uops
                if logging:
                    cycle_log.append(uops)
            else:
                build_cycles += 1
                room = depth - occ
                if room < max_build:
                    if logging:
                        cycle_log.append(0)
                        continue
                    extra = (max_build - room + width - 1) // width - 1
                    if extra > 0 and occ >= extra * width:
                        cycles += extra
                        retired += extra * width
                        occ -= extra * width
                        build_cycles += extra
                    continue
                # ---- one build fetch cycle, inlined (oracle:
                # BuildEngine.fetch_cycle) ----
                start = pos
                ip = ips[pos]
                ic_lookups += 1
                line_addr = ip >> ic_offset
                iset = ic_sets[line_addr & ic_set_mask]
                ic_clock += 1
                if line_addr in iset:
                    iset[line_addr] = ic_clock
                else:
                    ic_misses += 1
                    if len(iset) >= icache_assoc:
                        del iset[min(iset, key=iset.get)]
                    iset[line_addr] = ic_clock
                    if ic_lat > 0:
                        cycles += ic_lat
                        pen["ic_miss"] = pen.get("ic_miss", 0) + ic_lat
                window_start = ip & ~(fetch_block - 1)
                window_end = window_start + fetch_block
                limit = pos + decode_width
                if limit > total:
                    limit = total
                cuops = 0
                while pos < limit:
                    ip = ips[pos]
                    if ip < window_start or ip >= window_end:
                        break
                    cuops += nuops[pos]
                    pos += 1
                    k = kinds[pos - 1]
                    if k >= branch_floor:
                        i = pos - 1
                        if k == branch_floor:  # conditional
                            tk = takens[i]
                            cond_pred += 1
                            gi = ((ip >> 1) ^ g_hist) & g_imask
                            c = g_counters[gi]
                            if tk:
                                if c < 3:
                                    g_counters[gi] = c + 1
                                g_hist = ((g_hist << 1) | 1) & g_hmask
                                if c < 2:
                                    cond_misp += 1
                                    if misp_pen > 0:
                                        cycles += misp_pen
                                        pen["mispredict"] = (
                                            pen.get("mispredict", 0) + misp_pen
                                        )
                                    break
                                # correct taken: redirect via the BTB
                                tgt = next_ips[i]
                                base = ((ip >> 1) & b_set_mask) * b_assoc
                                found = -1
                                for slot in range(base, base + b_assoc):
                                    if b_tags[slot] == ip:
                                        found = slot
                                        break
                                if found >= 0:
                                    b_clock += 1
                                    b_stamps[found] = b_clock
                                    if b_targets[found] == tgt:
                                        if bubble > 0:
                                            cycles += bubble
                                            pen["redirect"] = (
                                                pen.get("redirect", 0) + bubble
                                            )
                                    else:
                                        if btb_pen > 0:
                                            cycles += btb_pen
                                            pen["btb_miss"] = (
                                                pen.get("btb_miss", 0) + btb_pen
                                            )
                                        b_targets[found] = tgt
                                        b_clock += 1
                                        b_stamps[found] = b_clock
                                else:
                                    if btb_pen > 0:
                                        cycles += btb_pen
                                        pen["btb_miss"] = (
                                            pen.get("btb_miss", 0) + btb_pen
                                        )
                                    victim = -1
                                    vstamp = 0
                                    for slot in range(base, base + b_assoc):
                                        if b_tags[slot] == -1:
                                            victim = slot
                                            break
                                        s = b_stamps[slot]
                                        if victim < 0 or s < vstamp:
                                            victim = slot
                                            vstamp = s
                                    b_tags[victim] = ip
                                    b_targets[victim] = tgt
                                    b_clock += 1
                                    b_stamps[victim] = b_clock
                                break
                            else:
                                if c > 0:
                                    g_counters[gi] = c - 1
                                g_hist = (g_hist << 1) & g_hmask
                                if c >= 2:
                                    cond_misp += 1
                                    if misp_pen > 0:
                                        cycles += misp_pen
                                        pen["mispredict"] = (
                                            pen.get("mispredict", 0) + misp_pen
                                        )
                                    break
                        elif k == c_ret:
                            ret_pred += 1
                            if r_count == 0:
                                predicted = -1
                            else:
                                r_top -= 1
                                if r_top < 0:
                                    r_top = r_depth - 1
                                r_count -= 1
                                predicted = r_slots[r_top]
                            if predicted != next_ips[i]:
                                ret_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                            elif bubble > 0:
                                cycles += bubble
                                pen["redirect"] = pen.get("redirect", 0) + bubble
                            break
                        elif k == c_call or k == c_jump:
                            if k == c_call:
                                if r_count < r_depth:
                                    r_count += 1
                                r_slots[r_top] = snexts[i]
                                r_top += 1
                                if r_top == r_depth:
                                    r_top = 0
                            tgt = next_ips[i]
                            base = ((ip >> 1) & b_set_mask) * b_assoc
                            found = -1
                            for slot in range(base, base + b_assoc):
                                if b_tags[slot] == ip:
                                    found = slot
                                    break
                            if found >= 0:
                                b_clock += 1
                                b_stamps[found] = b_clock
                                if b_targets[found] == tgt:
                                    if bubble > 0:
                                        cycles += bubble
                                        pen["redirect"] = (
                                            pen.get("redirect", 0) + bubble
                                        )
                                else:
                                    if btb_pen > 0:
                                        cycles += btb_pen
                                        pen["btb_miss"] = (
                                            pen.get("btb_miss", 0) + btb_pen
                                        )
                                    b_targets[found] = tgt
                                    b_clock += 1
                                    b_stamps[found] = b_clock
                            else:
                                if btb_pen > 0:
                                    cycles += btb_pen
                                    pen["btb_miss"] = (
                                        pen.get("btb_miss", 0) + btb_pen
                                    )
                                victim = -1
                                vstamp = 0
                                for slot in range(base, base + b_assoc):
                                    if b_tags[slot] == -1:
                                        victim = slot
                                        break
                                    s = b_stamps[slot]
                                    if victim < 0 or s < vstamp:
                                        victim = slot
                                        vstamp = s
                                b_tags[victim] = ip
                                b_targets[victim] = tgt
                                b_clock += 1
                                b_stamps[victim] = b_clock
                            break
                        else:  # indirect jump / indirect call
                            ind_pred += 1
                            if k == c_icall:
                                if r_count < r_depth:
                                    r_count += 1
                                r_slots[r_top] = snexts[i]
                                r_top += 1
                                if r_top == r_depth:
                                    r_top = 0
                            nxt = next_ips[i]
                            ii = ((ip >> 1) ^ (i_hist << 2)) & i_imask
                            hit = i_tags[ii] == ip and i_targets[ii] == nxt
                            i_tags[ii] = ip
                            i_targets[ii] = nxt
                            mixed = (nxt ^ (nxt >> 4) ^ (nxt >> 9)) & 0xF
                            i_hist = ((i_hist << 2) ^ mixed) & i_hmask
                            if not hit:
                                ind_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                            elif bubble > 0:
                                cycles += bubble
                                pen["redirect"] = pen.get("redirect", 0) + bubble
                            break
                from_ic += cuops
                occ += cuops
                if logging:
                    cycle_log.append(cuops)

                # ---- segment this fetch run into blocks/traces ----
                closed_any = False
                for i in range(start, pos):
                    nu = nuops[i]
                    if pending_block and pending_uops + nu > block_quota:
                        close_block()
                        if len(pending_trace) >= blocks_per_trace:
                            close_trace()
                            closed_any = True
                    k = kinds[i]
                    pending_block.append((ips[i], takens[i], k, nu, snexts[i]))
                    pending_uops += nu
                    ends_block = (
                        k >= branch_floor or pending_uops >= block_quota
                    )
                    if k == branch_floor:
                        pending_conds += 1
                    if ends_block:
                        close_block()
                        end_trace = (
                            len(pending_trace) >= blocks_per_trace
                            or pending_conds >= max_conds
                            or k == c_ijump or k == c_icall or k == c_ret
                        )
                        if end_trace:
                            close_trace()
                            closed_any = True
                if closed_any and pos < total:
                    ip0 = ips[pos]
                    tbucket = tb_sets[(ip0 >> 1) & tb_mask]
                    tentry = tbucket.get(ip0)
                    if tentry is not None:
                        tb_clock += 1
                        tbucket[ip0] = (tentry[0], tb_clock)
                        delivery = True
                        pending_block = []
                        pending_uops = 0
                        pending_trace = []
                        pending_conds = 0
                        sw_deliver += 1
                        if mode_pen > 0:
                            cycles += mode_pen
                            pen["mode_switch"] = (
                                pen.get("mode_switch", 0) + mode_pen
                            )
        if occ:
            cycles += (occ + width - 1) // width
            retired += occ

        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        stats.cycles = cycles
        stats.build_cycles = build_cycles
        stats.delivery_cycles = delivery_cycles
        stats.penalty_cycles = pen
        stats.uops_from_ic = from_ic
        stats.uops_from_structure = from_structure
        stats.retired_uops = retired
        stats.structure_fetch_cycles = fetch_cycles_s
        stats.structure_lookups = s_lookups
        stats.structure_hits = s_hits
        stats.blocks_built = blocks_built
        stats.switches_to_delivery = sw_deliver
        stats.switches_to_build = sw_build
        stats.cond_predictions = cond_pred
        stats.cond_mispredicts = cond_misp
        stats.indirect_predictions = ind_pred
        stats.indirect_mispredicts = ind_misp
        stats.return_predictions = ret_pred
        stats.return_mispredicts = ret_misp
        stats.ic_lookups = ic_lookups
        stats.ic_misses = ic_misses
        stats.verify_conservation(trace.total_uops)
        return stats

    # ------------------------------------------------------------------
    # reference path (behavioural oracle)
    # ------------------------------------------------------------------

    def _run_reference(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        config = self.config
        bc = self.bbtc_config
        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        flow = UopFlow(config, stats)
        gshare = GsharePredictor(config.gshare_history_bits, config.gshare_entries)
        rsb: ReturnStackBuffer = ReturnStackBuffer(config.rsb_depth)
        indirect: IndirectPredictor = IndirectPredictor(
            config.indirect_entries, config.indirect_history_bits
        )
        engine = BuildEngine(
            config=config,
            stats=stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=gshare,
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=rsb,
            indirect=indirect,
        )
        blocks = _SetAssoc(bc.num_sets, bc.assoc)
        table = _SetAssoc(bc.table_entries // bc.table_assoc, bc.table_assoc)

        ips = trace.ips
        takens = trace.takens
        instr_table = trace.instr_table
        total = len(trace)
        pos = 0
        delivery = False
        # fill state
        pending_block: List[Tuple[Instruction, bool]] = []
        pending_uops = 0
        pending_trace: List[int] = []  # block start IPs
        pending_conds = 0

        def close_block() -> None:
            nonlocal pending_block, pending_uops, pending_conds
            if not pending_block:
                return
            block = _Block(pending_block)
            blocks.put(block.start_ip, block)
            if len(pending_trace) < bc.blocks_per_trace:
                pending_trace.append(block.start_ip)
            pending_block = []
            pending_uops = 0

        def close_trace() -> None:
            nonlocal pending_trace, pending_conds
            if pending_trace:
                table.put(pending_trace[0], tuple(pending_trace))
                stats.blocks_built += 1
            pending_trace = []
            pending_conds = 0

        max_build_uops = 4 * config.decode_width
        max_fetch_uops = bc.blocks_per_trace * bc.block_uops

        while pos < total:
            stats.cycles += 1
            flow.drain()

            if delivery:
                stats.delivery_cycles += 1
                if not flow.can_accept(max_fetch_uops):
                    if cycle_log is not None:
                        cycle_log.append(0)
                    continue
                stats.structure_lookups += 1
                entry = table.get(ips[pos])
                if entry is None:
                    delivery = False
                    stats.switches_to_build += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)
                    if cycle_log is not None:
                        cycle_log.append(0)
                    continue
                uops, pos, complete = self._consume_trace(
                    entry, blocks, trace, pos, stats, gshare, rsb, indirect
                )
                if uops == 0 and not complete:
                    # first block pointer missed in the block cache
                    delivery = False
                    stats.switches_to_build += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)
                    if cycle_log is not None:
                        cycle_log.append(0)
                    continue
                stats.structure_hits += 1
                stats.structure_fetch_cycles += 1
                stats.uops_from_structure += uops
                flow.push(uops)
                if cycle_log is not None:
                    cycle_log.append(uops)
            else:
                stats.build_cycles += 1
                if not flow.can_accept(max_build_uops):
                    if cycle_log is not None:
                        cycle_log.append(0)
                    continue
                pos, cycle = engine.fetch_cycle(trace, pos)
                stats.uops_from_ic += cycle.uops
                flow.push(cycle.uops)
                if cycle_log is not None:
                    cycle_log.append(cycle.uops)
                for cause, cycles in cycle.penalties.items():
                    stats.add_penalty(cause, cycles)
                closed_any = False
                for i in range(cycle.start, cycle.end):
                    instr = instr_table[ips[i]]
                    if (
                        pending_block
                        and pending_uops + instr.num_uops > bc.block_uops
                    ):
                        close_block()
                        if len(pending_trace) >= bc.blocks_per_trace:
                            close_trace()
                            closed_any = True
                    pending_block.append((instr, bool(takens[i])))
                    pending_uops += instr.num_uops
                    ends_block = (
                        instr.kind.is_branch
                        or pending_uops >= bc.block_uops
                    )
                    if instr.kind is InstrKind.COND_BRANCH:
                        pending_conds += 1
                    if ends_block:
                        close_block()
                        end_trace = (
                            len(pending_trace) >= bc.blocks_per_trace
                            or pending_conds >= bc.max_cond_branches
                            or instr.kind.is_indirect
                        )
                        if end_trace:
                            close_trace()
                            closed_any = True
                if (
                    closed_any
                    and pos < total
                    and table.get(ips[pos]) is not None
                ):
                    delivery = True
                    pending_block = []
                    pending_uops = 0
                    pending_trace = []
                    pending_conds = 0
                    stats.switches_to_delivery += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)

        flow.drain_all()
        stats.verify_conservation(trace.total_uops)
        return stats

    # ------------------------------------------------------------------

    def _consume_trace(
        self,
        entry: Tuple[int, ...],
        blocks: _SetAssoc,
        trace: Trace,
        pos: int,
        stats: FrontendStats,
        gshare: GsharePredictor,
        rsb: ReturnStackBuffer,
        indirect: IndirectPredictor,
    ) -> Tuple[int, int, bool]:
        """Fetch the pointed-to blocks against the actual path.

        Returns (uops delivered, new position, walked-to-end flag).
        """
        config = self.config
        ips = trace.ips
        takens = trace.takens
        next_ips = trace.next_ips
        total = len(ips)
        uops = 0
        consumed = 0
        for block_ip in entry:
            index = pos + consumed
            if index >= total or ips[index] != block_ip:
                return uops, pos + consumed, False
            block = blocks.get(block_ip)
            if block is None:
                return uops, pos + consumed, False  # pointer into evicted block
            diverged = False
            for instr, recorded_taken in block.entries:
                index = pos + consumed
                if index >= total:
                    return uops, pos + consumed, False
                if ips[index] != instr.ip:
                    return uops, pos + consumed, False
                consumed += 1
                uops += instr.num_uops
                kind = instr.kind
                if kind is InstrKind.COND_BRANCH:
                    taken = bool(takens[index])
                    stats.cond_predictions += 1
                    if not gshare.update(instr.ip, taken):
                        stats.cond_mispredicts += 1
                        stats.add_penalty("mispredict", config.mispredict_penalty)
                        return uops, pos + consumed, False
                    if taken != recorded_taken:
                        diverged = True
                        break
                elif kind is InstrKind.CALL:
                    rsb.push(instr.next_ip)
                elif kind is InstrKind.INDIRECT_CALL:
                    rsb.push(instr.next_ip)
                    stats.indirect_predictions += 1
                    nxt = next_ips[index]
                    if not indirect.update(instr.ip, nxt, nxt):
                        stats.indirect_mispredicts += 1
                        stats.add_penalty("mispredict", config.mispredict_penalty)
                elif kind is InstrKind.INDIRECT_JUMP:
                    stats.indirect_predictions += 1
                    nxt = next_ips[index]
                    if not indirect.update(instr.ip, nxt, nxt):
                        stats.indirect_mispredicts += 1
                        stats.add_penalty("mispredict", config.mispredict_penalty)
                elif kind is InstrKind.RETURN:
                    stats.return_predictions += 1
                    if rsb.pop() != next_ips[index]:
                        stats.return_mispredicts += 1
                        stats.add_penalty("mispredict", config.mispredict_penalty)
            if diverged:
                return uops, pos + consumed, False
        return uops, pos + consumed, True
