"""Block-Based Trace Cache (§2.4, [Blac99]) — extension comparator.

The BBTC records traces of *block pointers* instead of uops: a block
cache stores each basic block once (indexed by block start IP) and a
trace table stores sequences of pointers into it.  This moves the
trace cache's redundancy from uops to pointers — cheaper, but with
extra fragmentation from the finer storage granularity, which is
exactly the trade-off the paper describes before introducing the XBC.
"""

from repro.bbtc.config import BbtcConfig
from repro.bbtc.frontend import BbtcFrontend

__all__ = ["BbtcConfig", "BbtcFrontend"]
