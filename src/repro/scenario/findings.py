"""The findings corpus: inversions as replayable JSON records.

A finding stores the complete recipe for its trace — base profile
name, the full parameter point, the program seed and the uop budgets —
plus the measured outcome and content hashes of both the trace and the
two stat blocks.  :func:`replay_finding` re-runs the recipe and checks
every hash, so "the corpus replays" means bit-identical traces and
statistics, not merely a similar hit-rate gap.

The corpus file is schema-versioned, deduplicated by finding id (a
stable hash of the recipe), and ordered best-objective-first.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.exec.engine import ExecPolicy
from repro.exec.hashing import stable_hash
from repro.exec.job import SimJob
from repro.harness.registry import make_trace
from repro.scenario.minimize import MinimizeResult
from repro.scenario.search import Evaluation, FuzzConfig, evaluate_point
from repro.scenario.space import ParameterSpace, Point

#: Corpus file schema generation.
CORPUS_SCHEMA = 1


@dataclass
class Finding:
    """One replayable inversion."""

    id: str
    base: str
    point: Point
    #: parameters deviating from base after minimization (empty for
    #: raw, unminimized findings).
    deltas: Dict[str, float]
    program_seed: int
    length_uops: int
    total_uops: int
    tc_hit_rate: float
    xbc_hit_rate: float
    objective: float
    trace_hash: str
    trace_uops: int
    trace_instructions: int
    tc_stats_hash: str
    xbc_stats_hash: str

    @classmethod
    def from_evaluation(
        cls,
        evaluation: Evaluation,
        base: str,
        deltas: Optional[Dict[str, float]] = None,
    ) -> "Finding":
        """Freeze an evaluation into a corpus record.

        Materializes the trace (a cache hit when the evaluation just
        ran in-process) to record its content hash and size.
        """
        trace = make_trace(evaluation.spec)
        recipe = {
            "kind": "fuzz-finding",
            "base": base,
            "point": evaluation.point,
            "program_seed": evaluation.spec.seed,
            "length_uops": evaluation.spec.length_uops,
            "total_uops": evaluation.total_uops,
        }
        return cls(
            id=stable_hash(recipe),
            base=base,
            point=dict(evaluation.point),
            deltas=dict(deltas or {}),
            program_seed=evaluation.spec.seed,
            length_uops=evaluation.spec.length_uops,
            total_uops=evaluation.total_uops,
            tc_hit_rate=evaluation.tc.uop_hit_rate,
            xbc_hit_rate=evaluation.xbc.uop_hit_rate,
            objective=evaluation.objective,
            trace_hash=trace.content_hash(),
            trace_uops=trace.total_uops,
            trace_instructions=trace.dynamic_instructions,
            tc_stats_hash=stable_hash(SimJob.encode_result(evaluation.tc)),
            xbc_stats_hash=stable_hash(SimJob.encode_result(evaluation.xbc)),
        )

    @classmethod
    def from_minimization(
        cls, minimized: MinimizeResult, base: str
    ) -> "Finding":
        """Freeze a minimization result (deltas included)."""
        return cls.from_evaluation(
            minimized.evaluation, base, deltas=minimized.deltas
        )


@dataclass
class FindingsCorpus:
    """An ordered, deduplicated set of findings plus run metadata."""

    findings: List[Finding] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def add(self, finding: Finding) -> bool:
        """Insert unless an identical recipe is present; keep order."""
        if any(existing.id == finding.id for existing in self.findings):
            return False
        self.findings.append(finding)
        self.findings.sort(key=lambda f: f.objective, reverse=True)
        return True

    def get(self, finding_id: str) -> Finding:
        """The finding whose id starts with *finding_id*."""
        matches = [
            f for f in self.findings if f.id.startswith(finding_id)
        ]
        if not matches:
            raise ConfigError(f"no finding with id {finding_id!r} in corpus")
        if len(matches) > 1:
            raise ConfigError(
                f"finding id prefix {finding_id!r} is ambiguous "
                f"({len(matches)} matches)"
            )
        return matches[0]

    def top(self, count: int) -> List[Finding]:
        """The *count* best findings by objective."""
        return self.findings[:count]

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the corpus as pretty-printed JSON (atomic replace)."""
        payload = {
            "schema": CORPUS_SCHEMA,
            "meta": self.meta,
            "findings": [asdict(finding) for finding in self.findings],
        }
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path: str) -> "FindingsCorpus":
        """Read a corpus file, checking the schema generation."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ConfigError(f"cannot read findings corpus: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"findings corpus {path!r} is not valid JSON: {exc}"
            ) from exc
        schema = payload.get("schema")
        if schema != CORPUS_SCHEMA:
            raise ConfigError(
                f"findings corpus schema {schema!r} unsupported "
                f"(expected {CORPUS_SCHEMA})"
            )
        corpus = cls(meta=dict(payload.get("meta", {})))
        for item in payload.get("findings", []):
            corpus.findings.append(Finding(**item))
        return corpus


@dataclass
class ReplayReport:
    """Outcome of re-running one finding's recipe."""

    finding: Finding
    evaluation: Evaluation
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every recorded hash and rate matched exactly."""
        return not self.mismatches


def replay_finding(
    finding: Finding, policy: Optional[ExecPolicy] = None
) -> ReplayReport:
    """Re-run a finding's exact recipe and verify bit-identity.

    The stored point is applied unclamped, so corpus entries stay
    replayable even if the space's bounds move under them.  Raises
    :class:`ReproError` only on execution failure; verification
    mismatches are reported, not raised.
    """
    space = ParameterSpace.default(finding.base)
    evaluation = evaluate_point(
        space,
        finding.point,
        program_seed=finding.program_seed,
        total_uops=finding.total_uops,
        length_uops=finding.length_uops,
        policy=policy,
        clamp=False,
    )
    report = ReplayReport(finding=finding, evaluation=evaluation)
    trace = make_trace(evaluation.spec)
    checks = (
        ("trace_hash", finding.trace_hash, trace.content_hash()),
        ("trace_uops", finding.trace_uops, trace.total_uops),
        (
            "trace_instructions",
            finding.trace_instructions,
            trace.dynamic_instructions,
        ),
        (
            "tc_stats_hash",
            finding.tc_stats_hash,
            stable_hash(SimJob.encode_result(evaluation.tc)),
        ),
        (
            "xbc_stats_hash",
            finding.xbc_stats_hash,
            stable_hash(SimJob.encode_result(evaluation.xbc)),
        ),
        ("tc_hit_rate", finding.tc_hit_rate, evaluation.tc.uop_hit_rate),
        ("xbc_hit_rate", finding.xbc_hit_rate, evaluation.xbc.uop_hit_rate),
    )
    for name, expected, actual in checks:
        if expected != actual:
            report.mismatches.append(
                f"{name}: stored {expected!r} != replayed {actual!r}"
            )
    return report


def corpus_from_run(
    config: FuzzConfig, minimized: List[MinimizeResult]
) -> FindingsCorpus:
    """Package one search run's minimized findings as a corpus."""
    corpus = FindingsCorpus(
        meta={
            "base": config.base,
            "seed": config.seed,
            "budget": config.budget,
            "total_uops": config.total_uops,
            "length_uops": config.length_uops,
        }
    )
    for item in minimized:
        corpus.add(Finding.from_minimization(item, config.base))
    return corpus
