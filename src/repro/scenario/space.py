"""The fuzzer's parameter space over workload-profile tunables.

A *point* is a plain ``{name: float}`` dict — JSON-serializable so the
findings corpus can store it verbatim and replay it bit-identically.
:class:`ParameterSpace` owns the mapping between points and concrete
:class:`~repro.program.profiles.WorkloadProfile` instances: terminator
and conditional-mixture weights are searched as independent raw weights
and normalized at build time (the generator itself normalizes by the
sum, so the search never wanders into an invalid simplex), and the
profile's hard caps (``max_body_instrs`` and friends) are derived from
the searched means so :meth:`WorkloadProfile.validate` always holds.

Every stochastic operation threads through a
:class:`~repro.common.rng.DeterministicRng`, making whole search runs
replayable from one integer seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import exp, log
from typing import Dict, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.program.profiles import WorkloadProfile, profile_by_name

#: A candidate assignment of every searched parameter.
Point = Dict[str, float]

#: Canonical order of the conditional-behaviour mixture weights.
_MIX_KINDS = ("monotonic", "biased", "pattern", "random")

#: Canonical order of the terminator-mix weights.
_TERM_FIELDS = (
    ("term_cond", "p_cond"),
    ("term_jump", "p_jump"),
    ("term_call", "p_call"),
    ("term_indirect", "p_indirect"),
    ("term_indirect_call", "p_indirect_call"),
)


@dataclass(frozen=True)
class Param:
    """One searchable dimension: bounds plus sampling behaviour.

    ``log=True`` makes sampling and mutation multiplicative — right for
    scale-like quantities (static footprint, function gaps) whose
    interesting values span orders of magnitude.  ``integer=True``
    rounds at *build* time only; points keep the float so hill-climbing
    can take sub-unit steps that accumulate.
    """

    name: str
    lo: float
    hi: float
    integer: bool = False
    log: bool = False

    def clamp(self, value: float) -> float:
        """Project *value* onto the parameter's closed range."""
        if value < self.lo:
            return self.lo
        if value > self.hi:
            return self.hi
        return value

    def sample(self, rng: DeterministicRng) -> float:
        """Draw uniformly (log-uniformly when ``log``) over the range."""
        if self.log:
            return exp(log(self.lo) + rng.random() * (log(self.hi) - log(self.lo)))
        return self.lo + rng.random() * (self.hi - self.lo)

    def perturb(self, value: float, rng: DeterministicRng, scale: float) -> float:
        """One mutation step of relative size *scale* around *value*."""
        step = (2.0 * rng.random() - 1.0) * scale
        if self.log:
            moved = value * exp(step * (log(self.hi) - log(self.lo)))
        else:
            moved = value + step * (self.hi - self.lo)
        return self.clamp(moved)


#: The searched dimensions.  Bounds are deliberately wider than any
#: registered profile: the point of the exercise is to leave charted
#: territory, subject only to generator validity.
_PARAMS: Tuple[Param, ...] = (
    # Footprint: the spec-level static-uop target (log scale: capacity
    # effects care about ratios to the 8K-uop budget, not differences).
    Param("static_uops", 2_000, 160_000, integer=True, log=True),
    # Program shape.
    Param("blocks_per_function", 3.0, 28.0),
    Param("call_depth", 2, 14, integer=True),
    Param("callees_per_function", 1.2, 4.5),
    Param("callee_skew", 0.6, 1.6),
    # Block shape.
    Param("body_instrs", 1.2, 16.0),
    # Terminator mix (raw weights; normalized in build()).
    Param("term_cond", 0.10, 1.0),
    Param("term_jump", 0.0, 0.6),
    Param("term_call", 0.0, 0.7),
    Param("term_indirect", 0.0, 0.35),
    Param("term_indirect_call", 0.0, 0.35),
    # Loop structure.
    Param("loop_gap", 0.5, 10.0),
    Param("loop_body", 1.0, 5.0),
    Param("nested_loop", 0.0, 0.5),
    Param("loop_escape", 0.0, 0.4),
    Param("loop_trip", 2.0, 24.0),
    # Conditional behaviour mixture (raw weights; normalized).
    Param("mix_monotonic", 0.02, 1.0),
    Param("mix_biased", 0.02, 1.0),
    Param("mix_pattern", 0.02, 1.0),
    Param("mix_random", 0.02, 1.0),
    Param("monotonic_bias", 0.90, 0.999),
    Param("bias_lo", 0.55, 0.95),
    Param("bias_hi", 0.60, 0.97),
    # Indirect branches.
    Param("indirect_targets", 2.0, 9.0),
    Param("indirect_skew", 0.5, 1.6),
    # Control-flow reconvergence (suffix sharing is the XBC's home turf;
    # the fuzzer gets to turn it off).
    Param("join_jump", 0.0, 1.0),
    Param("diamond", 0.0, 0.8),
    Param("switch_merge", 0.0, 1.0),
    # Layout.
    Param("function_gap_bytes", 40.0, 4_000.0, log=True),
)


@dataclass(frozen=True)
class ParameterSpace:
    """A base profile plus the searchable deviations from it.

    The space is anchored at a registered profile: unsampled structure
    (uop-size distribution, jump-distance caps, escape rates) comes
    from the base, and minimization measures findings as deltas from
    the base's point.
    """

    base_name: str
    params: Tuple[Param, ...] = _PARAMS

    @classmethod
    def default(cls, base_name: str = "server-web") -> "ParameterSpace":
        """The standard space anchored at *base_name* (validated)."""
        profile_by_name(base_name)  # raises ConfigError on unknown names
        return cls(base_name=base_name)

    def param(self, name: str) -> Param:
        """The parameter named *name* (:class:`ConfigError` if absent)."""
        for param in self.params:
            if param.name == name:
                return param
        raise ConfigError(f"unknown fuzz parameter {name!r}")

    # -- point <-> profile mapping -----------------------------------------

    def point_from_base(self, static_uops: float = 20_000) -> Point:
        """The base profile rendered as a point (the search's origin).

        ``static_uops`` defaults to a mid-range footprint rather than
        the base profile's native target: the native server targets sit
        at the extreme end of the footprint axis, which is a poor
        center for a search that also explores small working sets.
        """
        base = profile_by_name(self.base_name)
        mixture = dict(base.cond_mixture)
        point: Point = {
            "static_uops": float(static_uops),
            "blocks_per_function": base.mean_blocks_per_function,
            "call_depth": float(base.max_call_depth),
            "callees_per_function": base.mean_callees_per_function,
            "callee_skew": base.callee_popularity_skew,
            "body_instrs": base.mean_body_instrs,
            "loop_gap": base.mean_loop_gap,
            "loop_body": base.mean_loop_body,
            "nested_loop": base.p_nested_loop,
            "loop_escape": base.p_loop_escape,
            "loop_trip": base.mean_loop_trip,
            "monotonic_bias": base.monotonic_bias,
            "bias_lo": base.biased_range[0],
            "bias_hi": base.biased_range[1],
            "indirect_targets": base.mean_indirect_targets,
            "indirect_skew": base.indirect_skew,
            "join_jump": base.p_join_jump,
            "diamond": base.p_diamond,
            "switch_merge": base.p_switch_merge,
            "function_gap_bytes": base.mean_function_gap_bytes,
        }
        for point_name, field_name in _TERM_FIELDS:
            point[point_name] = getattr(base, field_name)
        for kind in _MIX_KINDS:
            point[f"mix_{kind}"] = mixture.get(kind, 0.0)
        return {name: self.param(name).clamp(value)
                for name, value in point.items()}

    def build(self, point: Point, clamp: bool = True):
        """Materialize *point* as ``(profile, static_uops)``.

        With ``clamp=False`` the stored values are applied verbatim —
        the replay path uses this so corpus entries stay bit-identical
        even if the space's bounds are tightened later.  The built
        profile is validated either way.
        """
        values: Dict[str, float] = {}
        for param in self.params:
            if param.name not in point:
                raise ConfigError(f"point is missing parameter {param.name!r}")
            value = float(point[param.name])
            if clamp:
                value = param.clamp(value)
            if param.integer:
                value = float(int(round(value)))
            values[param.name] = value

        term_total = sum(values[name] for name, _ in _TERM_FIELDS)
        if term_total <= 0:
            raise ConfigError("terminator weights sum to zero")
        terms = {field: values[name] / term_total
                 for name, field in _TERM_FIELDS}

        mix_total = sum(values[f"mix_{kind}"] for kind in _MIX_KINDS)
        if mix_total <= 0:
            raise ConfigError("cond_mixture weights sum to zero")
        mixture = tuple(
            (kind, values[f"mix_{kind}"] / mix_total) for kind in _MIX_KINDS
        )

        bias_lo = min(values["bias_lo"], values["bias_hi"])
        bias_hi = max(values["bias_lo"], values["bias_hi"])

        base = profile_by_name(self.base_name)
        profile = replace(
            base,
            name=f"{self.base_name}+fuzz",
            mean_blocks_per_function=values["blocks_per_function"],
            max_blocks_per_function=max(
                base.max_blocks_per_function,
                int(round(values["blocks_per_function"] * 3)),
            ),
            max_call_depth=int(values["call_depth"]),
            mean_callees_per_function=values["callees_per_function"],
            callee_popularity_skew=values["callee_skew"],
            mean_body_instrs=values["body_instrs"],
            max_body_instrs=max(
                base.max_body_instrs, int(round(values["body_instrs"] * 3)) + 1
            ),
            mean_loop_gap=values["loop_gap"],
            mean_loop_body=values["loop_body"],
            p_nested_loop=values["nested_loop"],
            p_loop_escape=values["loop_escape"],
            mean_loop_trip=values["loop_trip"],
            max_mean_trip=max(
                base.max_mean_trip, int(round(values["loop_trip"] * 2))
            ),
            cond_mixture=mixture,
            monotonic_bias=values["monotonic_bias"],
            biased_range=(bias_lo, bias_hi),
            mean_indirect_targets=values["indirect_targets"],
            max_indirect_targets=max(
                base.max_indirect_targets,
                int(round(values["indirect_targets"] * 2)),
            ),
            indirect_skew=values["indirect_skew"],
            p_join_jump=values["join_jump"],
            p_diamond=values["diamond"],
            p_switch_merge=values["switch_merge"],
            mean_function_gap_bytes=values["function_gap_bytes"],
            **terms,
        )
        profile.validate()
        return profile, int(values["static_uops"])

    # -- search moves -------------------------------------------------------

    def sample(self, rng: DeterministicRng) -> Point:
        """A fully random point (the search's exploration move)."""
        return {param.name: param.sample(rng) for param in self.params}

    def mutate(
        self, point: Point, rng: DeterministicRng, scale: float = 0.25
    ) -> Point:
        """Perturb 1-3 randomly chosen dimensions (the exploit move)."""
        moved = dict(point)
        count = rng.randint(1, 3)
        names = rng.sample([param.name for param in self.params], count)
        for name in names:
            param = self.param(name)
            moved[name] = param.perturb(moved[name], rng, scale)
        return moved
