"""Delta-debugging-style minimization of fuzz findings.

A raw finding from the search typically differs from the base profile
in every dimension — random sampling touches everything.  Minimization
reduces it to the smallest set of parameter deltas that still produces
the inversion, which is what turns "the fuzzer found a weird point"
into "flat branch bias plus a 4x footprint is what breaks the XBC
here".

The algorithm is the classic greedy 1-minimal loop: try reverting each
deviating parameter to its base value (one evaluation per trial), keep
any revert that preserves ``objective > margin``, and repeat until a
full pass keeps nothing.  Evaluations route through the same cached
job engine as the search, so re-minimizing a stored finding is nearly
free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.exec.engine import ExecPolicy
from repro.scenario.search import Evaluation, FuzzConfig, evaluate_point
from repro.scenario.space import ParameterSpace, Point

#: Relative tolerance deciding whether a parameter deviates from base.
_SAME_RTOL = 1e-9


def _differs(value: float, base_value: float) -> bool:
    scale = max(abs(value), abs(base_value), 1.0)
    return abs(value - base_value) > _SAME_RTOL * scale


@dataclass
class MinimizeResult:
    """A minimized point plus the deltas that carry the inversion."""

    evaluation: Evaluation
    #: parameters still deviating from base, with their kept values.
    deltas: Dict[str, float] = field(default_factory=dict)
    #: evaluations spent (cache hits included).
    evals_used: int = 0
    #: trial reverts the generator refused outright.
    invalid_trials: int = 0


#: Progress callback: (trial parameter name, kept, current evaluation).
ProgressFn = Callable[[str, bool, Evaluation], None]


def minimize_evaluation(
    space: ParameterSpace,
    evaluation: Evaluation,
    config: FuzzConfig,
    policy: Optional[ExecPolicy] = None,
    margin: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
) -> MinimizeResult:
    """Reduce *evaluation*'s point to 1-minimal deltas from base.

    *margin* defaults to ``config.min_gain`` — a revert is kept only
    while the objective stays above it, so the minimized finding is
    still a finding by the search's own standard.  Deterministic:
    parameters are tried in the space's declared order.
    """
    floor = config.min_gain if margin is None else margin
    if evaluation.objective <= floor:
        raise ConfigError(
            "cannot minimize: evaluation objective "
            f"{evaluation.objective:+.4f} is not above the margin {floor:+.4f}"
        )
    base_point = space.point_from_base()
    program_seed = evaluation.spec.seed

    def measure(point: Point) -> Evaluation:
        return evaluate_point(
            space, point,
            program_seed=program_seed,
            total_uops=config.total_uops,
            length_uops=evaluation.spec.length_uops,
            policy=policy,
        )

    current = dict(evaluation.point)
    best = evaluation
    deviating: List[str] = [
        param.name for param in space.params
        if _differs(current[param.name], base_point[param.name])
    ]
    result = MinimizeResult(evaluation=best)

    changed = True
    while changed:
        changed = False
        for name in list(deviating):
            trial = dict(current)
            trial[name] = base_point[name]
            try:
                trial_eval = measure(trial)
            except ConfigError:
                result.invalid_trials += 1
                continue
            finally:
                result.evals_used += 1
            kept = trial_eval.objective > floor
            if kept:
                current = trial
                best = trial_eval
                deviating.remove(name)
                changed = True
            if progress is not None:
                progress(name, kept, best)

    result.evaluation = best
    result.deltas = {name: current[name] for name in deviating}
    return result
