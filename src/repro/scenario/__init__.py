"""Adversarial scenario exploration: where does the XBC *lose*?

The paper's workloads (and our server family) are friendly territory
for the XBC — short blocks and many entry points are exactly what
extended blocks compress better than traces.  This package searches the
generator's parameter space for the opposite regime: profiles where the
trace cache's uop hit rate *exceeds* the XBC's at an equal uop budget
("inversions").

- :mod:`repro.scenario.space` — the bounded parameter space over
  :class:`~repro.program.profiles.WorkloadProfile` tunables;
- :mod:`repro.scenario.search` — seeded random-walk + hill-climb search
  maximizing ``tc_hit_rate − xbc_hit_rate``;
- :mod:`repro.scenario.minimize` — delta-debugging-style reduction of a
  finding to the fewest parameter deltas that preserve the inversion;
- :mod:`repro.scenario.findings` — the JSON findings corpus with exact
  seeds and hashes for bit-identical replay.
"""

from repro.scenario.findings import (
    CORPUS_SCHEMA,
    Finding,
    FindingsCorpus,
    ReplayReport,
    replay_finding,
)
from repro.scenario.minimize import MinimizeResult, minimize_evaluation
from repro.scenario.search import (
    Evaluation,
    FuzzConfig,
    SearchResult,
    evaluate_point,
    run_search,
)
from repro.scenario.space import Param, ParameterSpace

__all__ = [
    "CORPUS_SCHEMA",
    "Evaluation",
    "Finding",
    "FindingsCorpus",
    "FuzzConfig",
    "MinimizeResult",
    "Param",
    "ParameterSpace",
    "ReplayReport",
    "SearchResult",
    "evaluate_point",
    "minimize_evaluation",
    "replay_finding",
    "run_search",
]
