"""Seeded search for XBC-vs-TC inversions.

The objective is ``tc.uop_hit_rate − xbc.uop_hit_rate`` at an equal uop
budget: positive means the trace cache beat the XBC on the candidate
workload — the regime the paper's suites never enter.  The loop mixes
exploration (fresh random points) with hill-climbing (mutations of the
best point so far), accepting any candidate the generator can realize
and collecting every evaluation whose objective clears ``min_gain``.

Candidates evaluate through the :mod:`repro.exec` job engine: each one
is a pair of :class:`~repro.exec.job.SimJob` (tc, xbc) over a
:class:`~repro.harness.registry.TraceSpec` carrying the candidate
profile inline, so results are content-addressed — replaying a finding
or re-running a search hits the persistent cache instead of re-running
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import ConfigError, ReproError
from repro.common.rng import DeterministicRng
from repro.exec.engine import ExecPolicy, execute_jobs
from repro.exec.job import SimJob
from repro.frontend.config import FrontendConfig
from repro.frontend.metrics import FrontendStats
from repro.harness.registry import TraceSpec
from repro.scenario.space import ParameterSpace, Point

#: Trace name prefix for fuzz candidates (their TraceSpec ``suite``).
FUZZ_SUITE_PREFIX = "fuzz"


def fuzz_program_seed(search_seed: int) -> int:
    """The program seed all candidates of one search run share.

    Keeping the program seed fixed per run makes the objective a pure
    function of the profile parameters (no seed lottery between
    candidates) and lets minimization re-evaluations share cache
    entries with the search that produced them.
    """
    return 7919 * (search_seed % 100_003) + 13


@dataclass(frozen=True)
class FuzzConfig:
    """One search run's knobs (all folded into the findings corpus)."""

    #: total candidate evaluations (the base point costs one).
    budget: int = 24
    seed: int = 1
    #: registered profile anchoring the space.
    base: str = "server-web"
    #: uop capacity budget given to both frontends.
    total_uops: int = 8192
    #: dynamic trace length per candidate.
    length_uops: int = 60_000
    #: probability of an exploration (fresh random) move.
    explore: float = 0.35
    #: objective threshold for recording a finding.
    min_gain: float = 0.0005
    #: mutation step size for hill-climb moves.
    mutation_scale: float = 0.25

    def validate(self) -> None:
        """Raise :class:`ConfigError` for unusable knob settings."""
        if self.budget < 1:
            raise ConfigError("fuzz budget must be >= 1")
        if self.total_uops < 1 or self.length_uops < 1:
            raise ConfigError("total_uops and length_uops must be >= 1")
        if not 0.0 <= self.explore <= 1.0:
            raise ConfigError("explore must be in [0, 1]")
        if self.mutation_scale <= 0:
            raise ConfigError("mutation_scale must be > 0")


@dataclass
class Evaluation:
    """One candidate's measured outcome."""

    point: Point
    spec: TraceSpec
    tc: FrontendStats
    xbc: FrontendStats
    #: uop capacity budget both frontends were given.
    total_uops: int = 8192

    @property
    def objective(self) -> float:
        """``tc_hit − xbc_hit``; positive = inversion."""
        return self.tc.uop_hit_rate - self.xbc.uop_hit_rate


def evaluate_point(
    space: ParameterSpace,
    point: Point,
    *,
    program_seed: int,
    total_uops: int = 8192,
    length_uops: int = 60_000,
    policy: Optional[ExecPolicy] = None,
    clamp: bool = True,
) -> Evaluation:
    """Build, trace and simulate one candidate point.

    Raises :class:`ConfigError` when the point cannot be realized as a
    valid profile, and :class:`ReproError` when a simulation job fails.
    """
    profile, static_uops = space.build(point, clamp=clamp)
    spec = TraceSpec(
        suite=f"{FUZZ_SUITE_PREFIX}-{space.base_name}",
        index=0,
        seed=program_seed,
        static_uops=static_uops,
        length_uops=length_uops,
        profile=profile,
    )
    fe_config = FrontendConfig()
    jobs = [
        SimJob(frontend=kind, spec=spec, fe_config=fe_config,
               total_uops=total_uops)
        for kind in ("tc", "xbc")
    ]
    results = execute_jobs(jobs, policy, label="fuzz-eval")
    for result in results:
        if not result.ok:
            raise ReproError(
                f"fuzz evaluation failed ({result.job.frontend}): "
                f"{result.error}"
            )
    return Evaluation(
        point=dict(point), spec=spec,
        tc=results[0].value, xbc=results[1].value,
        total_uops=total_uops,
    )


@dataclass
class SearchResult:
    """Everything one search run learned."""

    config: FuzzConfig
    base: Evaluation
    evaluations: List[Evaluation] = field(default_factory=list)
    #: evaluations with ``objective > config.min_gain``, best first.
    findings: List[Evaluation] = field(default_factory=list)
    #: rejected candidate points (generator refused them).
    invalid_points: int = 0

    @property
    def best(self) -> Evaluation:
        """The highest-objective evaluation seen (base included)."""
        candidates = [self.base] + self.evaluations
        return max(candidates, key=lambda ev: ev.objective)


#: Progress callback: (evaluations done, budget, latest, best so far).
ProgressFn = Callable[[int, int, Evaluation, Evaluation], None]


def run_search(
    space: ParameterSpace,
    config: FuzzConfig,
    policy: Optional[ExecPolicy] = None,
    progress: Optional[ProgressFn] = None,
) -> SearchResult:
    """Run one seeded search; deterministic given (space, config).

    The first evaluation is always the space's base point — both the
    hill-climb origin and the sanity anchor (on paper-like profiles the
    objective starts strongly negative).
    """
    config.validate()
    rng = DeterministicRng(config.seed).fork(101)
    program_seed = fuzz_program_seed(config.seed)

    def measure(point: Point) -> Evaluation:
        return evaluate_point(
            space, point,
            program_seed=program_seed,
            total_uops=config.total_uops,
            length_uops=config.length_uops,
            policy=policy,
        )

    base = measure(space.point_from_base())
    result = SearchResult(config=config, base=base)
    if progress is not None:
        progress(1, config.budget, base, base)

    best = base
    spent = 1
    while spent < config.budget:
        explore = rng.random() < config.explore
        point = (
            space.sample(rng) if explore
            else space.mutate(best.point, rng, config.mutation_scale)
        )
        try:
            evaluation = measure(point)
        except ConfigError:
            # The generator refused the point (derived caps can still
            # collide for extreme corners).  Costs a budget slot — the
            # run must terminate regardless of the rejection rate.
            result.invalid_points += 1
            spent += 1
            continue
        result.evaluations.append(evaluation)
        spent += 1
        if evaluation.objective > best.objective:
            best = evaluation
        if progress is not None:
            progress(spent, config.budget, evaluation, best)

    result.findings = sorted(
        (ev for ev in result.evaluations
         if ev.objective > config.min_gain),
        key=lambda ev: ev.objective,
        reverse=True,
    )
    return result
