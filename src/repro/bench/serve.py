"""Serve-mode latency benchmark (``repro bench --serve``).

Measures the service overhead a sweep client actually experiences:
a :class:`~repro.serve.app.BackgroundServer` is started on an
ephemeral port, one cold request pays the real simulation, then a
stream of identical requests measures the warm path (submit →
memoized/cached answer → result fetched).  Reported latencies are
end-to-end over HTTP on localhost, so they include request parsing,
scheduling and JSON encoding — the things ``repro bench``'s in-process
phases cannot see.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


def run_serve_bench(
    requests: int = 32,
    length: int = 20_000,
    total_uops: int = 2048,
    workers: int = 2,
    cache_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the latency benchmark; returns the ``serve`` report section."""
    from repro.exec.engine import ExecPolicy
    from repro.serve.app import BackgroundServer, build_app
    from repro.serve.client import ServeClient

    policy = ExecPolicy(
        workers=workers, use_cache=True, cache_dir=cache_dir, progress=False
    )
    app = build_app(policy=policy, port=0, queue_size=max(64, requests * 2))
    server = BackgroundServer(app)
    base_url = server.start()
    try:
        client = ServeClient(base_url, timeout=120.0)
        request = {
            "kind": "sim", "frontend": "xbc", "suite": "specint",
            "index": 0, "length": length, "total_uops": total_uops,
        }

        t0 = time.perf_counter()
        acknowledgement = client.submit(request)
        document = client.wait(acknowledgement["job_id"], timeout=120.0)
        cold_seconds = time.perf_counter() - t0
        if document["status"] != "done":
            raise RuntimeError(
                f"cold serve request failed: {document.get('error')}"
            )

        warm: List[float] = []
        for _ in range(requests):
            t0 = time.perf_counter()
            acknowledgement = client.submit(request)
            document = client.wait(acknowledgement["job_id"], timeout=120.0)
            warm.append(time.perf_counter() - t0)
        warm.sort()

        def quantile(q: float) -> float:
            rank = min(len(warm) - 1, max(0, round(q * (len(warm) - 1))))
            return warm[rank]

        metrics = client.metrics()
        return {
            "requests": requests,
            "length_uops": length,
            "total_uops": total_uops,
            "cold_ms": round(cold_seconds * 1000.0, 3),
            "warm_p50_ms": round(quantile(0.50) * 1000.0, 3),
            "warm_p95_ms": round(quantile(0.95) * 1000.0, 3),
            "warm_mean_ms": round(
                sum(warm) / len(warm) * 1000.0, 3
            ),
            "warm_requests_per_sec": round(
                len(warm) / sum(warm), 1
            ),
            "server_jobs": metrics["jobs"],
        }
    finally:
        server.stop()


def format_serve_bench(section: Dict[str, object]) -> str:
    """Human-readable rendering for the CLI."""
    return (
        f"  serve            cold {section['cold_ms']:.1f} ms, "
        f"warm p50 {section['warm_p50_ms']:.1f} ms / "
        f"p95 {section['warm_p95_ms']:.1f} ms "
        f"({section['warm_requests_per_sec']:,.0f} req/s over "
        f"{section['requests']} warm requests)"
    )
