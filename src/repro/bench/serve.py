"""Serve-mode latency and saturation benchmarks.

Two harnesses live here:

- :func:`run_serve_bench` (``repro bench --serve``) measures the
  per-request overhead a single sweep client experiences: a
  :class:`~repro.serve.app.BackgroundServer` is started on an
  ephemeral port, one cold request pays the real simulation, then a
  stream of identical requests measures the warm path (submit →
  memoized/cached answer → result fetched).
- :func:`run_serve_load` (``repro bench --serve-load``) measures what
  the service does *under saturation*: for each worker count in a
  stage list it starts a fresh server (fresh cache, so cold traffic
  is really cold) and drives it with many concurrent client threads
  submitting a mixed cold/warm request stream for a bounded duration.
  Latencies are recorded into the same fixed-bucket
  :class:`~repro.serve.metrics.LatencyHistogram` the server's
  ``/metrics`` endpoint uses, so the harness's p50/p99 and the
  server's are read from identical buckets.  Each stage reports
  saturation throughput (requests/s and served uops/s), latency
  quantiles, and the error/backpressure counts (client retries, 429
  rejections, failures) that tell saturation apart from collapse.

Reported latencies are end-to-end over HTTP on localhost, so they
include request parsing, scheduling and JSON encoding — the things
``repro bench``'s in-process phases cannot see.
"""

from __future__ import annotations

import itertools
import random
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

#: Default worker-count stages for ``--serve-load`` (the scaling
#: table: single-worker baseline, then 2x and 4x sharded pools).
DEFAULT_LOAD_WORKERS = (1, 2, 4)


def run_serve_bench(
    requests: int = 32,
    length: int = 20_000,
    total_uops: int = 2048,
    workers: int = 2,
    cache_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the latency benchmark; returns the ``serve`` report section."""
    from repro.exec.engine import ExecPolicy
    from repro.serve.app import BackgroundServer, build_app
    from repro.serve.client import ServeClient

    policy = ExecPolicy(
        workers=workers, use_cache=True, cache_dir=cache_dir, progress=False
    )
    app = build_app(policy=policy, port=0, queue_size=max(64, requests * 2))
    server = BackgroundServer(app)
    base_url = server.start()
    try:
        client = ServeClient(base_url, timeout=120.0)
        request = {
            "kind": "sim", "frontend": "xbc", "suite": "specint",
            "index": 0, "length": length, "total_uops": total_uops,
        }

        t0 = time.perf_counter()
        acknowledgement = client.submit(request)
        document = client.wait(acknowledgement["job_id"], timeout=120.0)
        cold_seconds = time.perf_counter() - t0
        if document["status"] != "done":
            raise RuntimeError(
                f"cold serve request failed: {document.get('error')}"
            )

        warm: List[float] = []
        for _ in range(requests):
            t0 = time.perf_counter()
            acknowledgement = client.submit(request)
            document = client.wait(acknowledgement["job_id"], timeout=120.0)
            warm.append(time.perf_counter() - t0)
        warm.sort()

        def quantile(q: float) -> float:
            rank = min(len(warm) - 1, max(0, round(q * (len(warm) - 1))))
            return warm[rank]

        metrics = client.metrics()
        return {
            "requests": requests,
            "length_uops": length,
            "total_uops": total_uops,
            "cold_ms": round(cold_seconds * 1000.0, 3),
            "warm_p50_ms": round(quantile(0.50) * 1000.0, 3),
            "warm_p95_ms": round(quantile(0.95) * 1000.0, 3),
            "warm_mean_ms": round(
                sum(warm) / len(warm) * 1000.0, 3
            ),
            "warm_requests_per_sec": round(
                len(warm) / sum(warm), 1
            ),
            "server_jobs": metrics["jobs"],
        }
    finally:
        server.stop()


def format_serve_bench(section: Dict[str, object]) -> str:
    """Human-readable rendering for the CLI."""
    return (
        f"  serve            cold {section['cold_ms']:.1f} ms, "
        f"warm p50 {section['warm_p50_ms']:.1f} ms / "
        f"p95 {section['warm_p95_ms']:.1f} ms "
        f"({section['warm_requests_per_sec']:,.0f} req/s over "
        f"{section['requests']} warm requests)"
    )


# ----------------------------------------------------------------------
# saturation load harness (``repro bench --serve-load``)
# ----------------------------------------------------------------------


def _load_stage(
    workers: int,
    clients: int,
    duration: float,
    length: int,
    total_uops: int,
    warm_fraction: float,
    warm_pool: int,
    queue_size: int,
    cache_dir: str,
) -> Dict[str, object]:
    """Drive one worker-count stage to saturation; returns its report."""
    from repro.exec.engine import ExecPolicy
    from repro.serve.app import BackgroundServer, build_app
    from repro.serve.client import (
        RetryPolicy,
        ServeClient,
        ServeError,
        ServeUnavailable,
    )
    from repro.serve.metrics import LatencyHistogram

    # One engine thread per shard: the scaling the stage measures must
    # come from adding *worker processes*, not from hidden threads.
    policy = ExecPolicy(
        workers=1, use_cache=True, cache_dir=cache_dir, progress=False
    )
    app = build_app(
        policy=policy, port=0, queue_size=queue_size, serve_workers=workers
    )
    server = BackgroundServer(app)
    base_url = server.start()
    try:
        seed = ServeClient(base_url, timeout=120.0)
        warm_requests = [
            {
                "kind": "sim", "frontend": "xbc", "suite": "specint",
                "index": index, "length": length,
                "total_uops": total_uops,
            }
            for index in range(warm_pool)
        ]
        # Pre-pay the warm pool's simulations so "warm" traffic during
        # the timed window is genuinely warm (memo/cache hits).
        for request in warm_requests:
            acknowledgement = seed.submit(request)
            document = seed.wait(acknowledgement["job_id"], timeout=120.0)
            if document["status"] != "done":
                raise RuntimeError(
                    f"warm-pool seed failed: {document.get('error')}"
                )

        # Cold traffic: every request gets a never-seen-before job key
        # by stretching the trace length (index is range-capped by the
        # protocol, length is not) — each cold submit really simulates.
        cold_counter = itertools.count(1)
        counter_lock = threading.Lock()

        def next_cold_request() -> Dict[str, Any]:
            with counter_lock:
                step = next(cold_counter)
            request = dict(warm_requests[0])
            request["length"] = length + step
            return request

        retry = RetryPolicy(attempts=4, base=0.05, cap=1.0)
        start_gate = threading.Event()
        deadline = [0.0]  # set just before the gate opens

        def client_loop(thread_index: int) -> Dict[str, object]:
            rng = random.Random(0xB0A7 ^ thread_index)
            client = ServeClient(base_url, timeout=30.0)
            histogram = LatencyHistogram()
            counts = {
                "completed": 0, "failed": 0, "retries": 0,
                "cold": 0, "warm": 0, "uops": 0,
            }

            def counting_sleep(seconds: float) -> None:
                counts["retries"] += 1
                time.sleep(seconds)

            start_gate.wait()
            while time.monotonic() < deadline[0]:
                if rng.random() < warm_fraction:
                    request = warm_requests[
                        rng.randrange(len(warm_requests))
                    ]
                    counts["warm"] += 1
                else:
                    request = next_cold_request()
                    counts["cold"] += 1
                t0 = time.perf_counter()
                try:
                    acknowledgement = client.submit_with_retry(
                        request, retry=retry,
                        sleep=counting_sleep, rng=rng.random,
                    )
                    document = client.wait(
                        acknowledgement["job_id"], timeout=60.0
                    )
                    ok = document.get("status") == "done"
                except (ServeError, ServeUnavailable):
                    ok = False
                histogram.record(time.perf_counter() - t0)
                if ok:
                    counts["completed"] += 1
                    counts["uops"] += request["length"]
                else:
                    counts["failed"] += 1
            return {"histogram": histogram, **counts}

        results: List[Optional[Dict[str, object]]] = [None] * clients

        def runner(slot: int) -> None:
            results[slot] = client_loop(slot)

        threads = [
            threading.Thread(
                target=runner, args=(slot,),
                name=f"serve-load-client-{slot}", daemon=True,
            )
            for slot in range(clients)
        ]
        for thread in threads:
            thread.start()
        t_start = time.monotonic()
        deadline[0] = t_start + duration
        start_gate.set()
        for thread in threads:
            thread.join()
        elapsed = max(time.monotonic() - t_start, 1e-9)

        histogram = LatencyHistogram()
        totals = {
            "completed": 0, "failed": 0, "retries": 0,
            "cold": 0, "warm": 0, "uops": 0,
        }
        for result in results:
            if result is None:  # pragma: no cover - thread died
                continue
            histogram.merge(result["histogram"])
            for name in totals:
                totals[name] += result[name]

        metrics = seed.metrics()
        latency = histogram.snapshot()
        return {
            "workers": workers,
            "clients": clients,
            "duration_seconds": round(elapsed, 3),
            "completed": totals["completed"],
            "failed": totals["failed"],
            "retries": totals["retries"],
            "cold": totals["cold"],
            "warm": totals["warm"],
            "requests_per_sec": round(totals["completed"] / elapsed, 1),
            "uops": totals["uops"],
            "uops_per_sec": round(totals["uops"] / elapsed, 1),
            "p50_ms": latency["p50_ms"],
            "p99_ms": latency["p99_ms"],
            "mean_ms": latency["mean_ms"],
            "max_ms": latency["max_ms"],
            "rejected_429": metrics["jobs"]["rejected"],
            "server_failed": metrics["jobs"]["failed"],
            "server_cache_hit_ratio":
                metrics["engine"]["cache_hit_ratio"],
        }
    finally:
        server.stop()


def run_serve_load(
    clients: int = 16,
    duration: float = 4.0,
    worker_counts: Optional[Sequence[int]] = None,
    length: int = 6_000,
    total_uops: int = 2048,
    warm_fraction: float = 0.8,
    warm_pool: int = 4,
    queue_size: int = 512,
) -> Dict[str, object]:
    """Run the saturation load harness over a list of worker counts.

    For each count in *worker_counts* (default
    :data:`DEFAULT_LOAD_WORKERS`) a fresh server with a fresh cache is
    saturated by *clients* concurrent threads for *duration* seconds
    with a *warm_fraction* / cold mixed stream.  Returns the
    ``serve_load`` report section: the shared settings plus one stage
    dict per worker count, each carrying its throughput, latency
    quantiles and error/backpressure counts, and a ``speedup`` factor
    relative to the first (baseline) stage.
    """
    counts = list(worker_counts) if worker_counts else \
        list(DEFAULT_LOAD_WORKERS)
    if not counts or any(count < 1 for count in counts):
        raise ValueError(
            f"worker counts must be positive integers, got {counts}"
        )
    stages: List[Dict[str, object]] = []
    for workers in counts:
        with tempfile.TemporaryDirectory(
            prefix="repro-serve-load-"
        ) as cache_dir:
            stages.append(_load_stage(
                workers=workers, clients=clients, duration=duration,
                length=length, total_uops=total_uops,
                warm_fraction=warm_fraction, warm_pool=warm_pool,
                queue_size=queue_size, cache_dir=cache_dir,
            ))
    baseline = stages[0]["requests_per_sec"] or 1.0
    for stage in stages:
        stage["speedup"] = round(
            float(stage["requests_per_sec"]) / float(baseline), 2
        )
    return {
        "clients": clients,
        "duration_seconds": duration,
        "length_uops": length,
        "total_uops": total_uops,
        "warm_fraction": warm_fraction,
        "warm_pool": warm_pool,
        "queue_size": queue_size,
        "worker_counts": counts,
        "stages": stages,
    }


def format_serve_load(section: Dict[str, object]) -> str:
    """Human-readable scaling table for the CLI."""
    lines = [
        f"  serve-load: {section['clients']} clients, "
        f"{section['duration_seconds']}s/stage, "
        f"{int(float(section['warm_fraction']) * 100)}% warm"
    ]
    for stage in section["stages"]:
        lines.append(
            f"    w={stage['workers']}: "
            f"{stage['requests_per_sec']:8,.1f} req/s "
            f"({stage['speedup']:.2f}x)  "
            f"p50 {stage['p50_ms']:.1f} ms / p99 {stage['p99_ms']:.1f} ms  "
            f"{stage['completed']} ok, {stage['failed']} failed, "
            f"{stage['retries']} retries, {stage['rejected_429']} x 429"
        )
    return "\n".join(lines)
