"""The benchmark harness behind ``repro bench``.

Each *phase* is timed with ``time.perf_counter`` (best of N repeats,
because the first repeat pays warm-up costs and the scheduler adds
noise) and reported as seconds plus uops/second.  Peak RSS comes from
``resource.getrusage`` where available (Linux/macOS; the import is
gated so the harness still runs on platforms without it).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Tuple

from repro.harness.registry import registry_spec
from repro.harness.runner import FRONTEND_KINDS, run_frontend
from repro.program.generator import generate_program
from repro.program.profiles import profile_for_suite
from repro.trace.executor import execute_program

#: Allowed calibrated-throughput drop before the gate fails (30%).
#: Baselines may tighten or relax this per phase with a ``tolerance``
#: key inside the phase entry.
REGRESSION_TOLERANCE = 0.30

#: Report schema version (bump when the JSON layout changes).
#: 2: added ``phase_list`` and ``cpu_affinity``; phases are filterable.
#: 3: added ``timestamp`` (UTC ISO-8601); ``rev`` carries a ``-dirty``
#:    suffix when the working tree has uncommitted changes.
#: 4: added the ``serve_load`` phase token and report section; a
#:    ``serve_load_w<N>`` phase entry per worker-count stage (with an
#:    embedded ``tolerance``, saturation numbers are noisier than
#:    in-process timing); trace generation is skipped entirely when no
#:    simulation phase is selected.
SCHEMA = 4

_BENCH_SUITES = ("specint", "games", "sysmark")
_QUICK_SUITES = ("specint",)

#: The non-frontend phase names accepted by the ``phases`` filter.
_TRACE_GEN_PHASE = "trace_gen"
_SERVE_LOAD_PHASE = "serve_load"

#: Gate tolerance embedded in ``serve_load_w<N>`` phase entries:
#: end-to-end saturation throughput over HTTP on a shared CI box has
#: far more variance than best-of-N in-process loops.
SERVE_LOAD_TOLERANCE = 0.60


def _cpu_affinity() -> Optional[int]:
    """CPUs this process may run on (None where unsupported)."""
    getter = getattr(os, "sched_getaffinity", None)
    if getter is None:  # pragma: no cover - non-Linux platform
        return None
    try:
        return len(getter(0))
    except OSError:  # pragma: no cover - containers without the syscall
        return None


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB, if measurable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover
        return usage // 1024
    return usage


def _git_rev() -> str:
    """Short HEAD rev, with ``-dirty`` appended when the working tree
    has uncommitted changes — numbers measured on a modified tree must
    never be attributed to the clean rev in the perf registry."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode != 0:
            return "unknown"
        rev = out.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10,
        )
        if status.returncode == 0 and status.stdout.strip():
            rev += "-dirty"
        return rev
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def calibrate(loops: int = 200_000) -> float:
    """Score a fixed pure-Python workload in operations/second.

    The workload (dict traffic, integer arithmetic, attribute-free
    tight loop) is deliberately similar in character to the simulator
    hot loops, so its score tracks how fast *this interpreter on this
    machine* runs simulator-like code.  Reports embed the score;
    cross-machine comparisons divide it out.
    """
    best = float("inf")
    for _ in range(3):
        table: Dict[int, int] = {}
        t0 = time.perf_counter()
        acc = 0
        for i in range(loops):
            key = (i * 2654435761) & 1023
            acc += table.get(key, 0)
            table[key] = acc & 0xFFFF
        best = min(best, time.perf_counter() - t0)
    return loops / best


def _time_best(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-*repeats* wall time of *fn* and its last return value."""
    best = float("inf")
    value: object = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def resolve_phases(
    phases: Optional[List[str]],
    frontends: Optional[List[str]] = None,
) -> Tuple[bool, List[str], bool]:
    """Resolve the phase filter to
    (time trace_gen?, frontend kinds, run serve_load?).

    *phases* holds tokens from ``--phases`` (frontend kinds plus
    ``trace_gen`` and ``serve_load``); *frontends* is the legacy
    ``--frontend`` filter.  Both absent means every simulation phase
    runs (``serve_load`` is opt-in — it stands up real server
    processes); both present intersect.
    """
    kinds = list(frontends) if frontends else list(FRONTEND_KINDS)
    if phases is None:
        return True, kinds, False
    tokens = [token.strip() for token in phases if token.strip()]
    special = (_TRACE_GEN_PHASE, _SERVE_LOAD_PHASE)
    unknown = [
        token for token in tokens
        if token not in special and token not in FRONTEND_KINDS
    ]
    if unknown:
        valid = ", ".join(special + tuple(FRONTEND_KINDS))
        raise ValueError(
            f"unknown bench phase(s) {', '.join(unknown)}; expected {valid}"
        )
    selected = [kind for kind in kinds if kind in tokens]
    return (
        _TRACE_GEN_PHASE in tokens,
        selected,
        _SERVE_LOAD_PHASE in tokens,
    )


def run_bench(
    budget: int = 150_000,
    quick: bool = False,
    frontends: Optional[List[str]] = None,
    profile_path: Optional[str] = None,
    phases: Optional[List[str]] = None,
    serve_load: bool = False,
    load_clients: int = 16,
    load_duration: float = 4.0,
    load_workers: Optional[List[int]] = None,
) -> dict:
    """Run the benchmark suite and return the report dict.

    *budget* is the dynamic trace length in uops.  ``quick=True``
    shrinks the budget and suite list for CI smoke use.  *phases*
    restricts what is timed (frontend kinds, ``trace_gen`` and/or
    ``serve_load``); trace generation still happens — untimed — when
    filtered out but frontend phases run, because every frontend
    phase consumes its traces; it is skipped entirely when no
    simulation phase is selected (a pure ``serve_load`` run).  When
    *profile_path* is set, the ``xbc`` phase additionally runs once
    under :mod:`cProfile` and the stats are dumped there.

    ``serve_load=True`` (or a ``serve_load`` phase token) also runs
    the saturation load harness (:func:`repro.bench.serve
    .run_serve_load`) with *load_clients* concurrent clients for
    *load_duration* seconds per worker-count stage in *load_workers*;
    each stage lands in the report both as the ``serve_load`` section
    and as a ``serve_load_w<N>`` phase entry the perf registry
    ingests like any other phase.
    """
    if quick:
        budget = min(budget, 60_000)
    suites = _QUICK_SUITES if quick else _BENCH_SUITES
    repeats = 2 if quick else 3
    time_trace_gen, kinds, load_selected = resolve_phases(phases, frontends)
    load_selected = load_selected or serve_load

    phase_reports: Dict[str, dict] = {}
    serve_load_section: Optional[dict] = None

    # Phase 1: trace generation, caches bypassed (generator + executor
    # called directly, exactly what a cold `make_trace` does).  Skipped
    # outright when nothing downstream consumes the traces.
    def generate_all():
        traces = []
        for suite in suites:
            spec = registry_spec(suite, 0, budget)
            profile = profile_for_suite(spec.suite).scaled(spec.static_uops)
            program = generate_program(
                profile, seed=spec.seed, name=spec.name, suite=spec.suite
            )
            traces.append(execute_program(program, max_uops=spec.length_uops))
        return traces

    if time_trace_gen:
        seconds, traces = _time_best(generate_all, repeats)
    elif kinds or profile_path:
        traces = generate_all()
    else:
        traces = []
    total_uops = sum(trace.total_uops for trace in traces)
    if time_trace_gen:
        phase_reports[_TRACE_GEN_PHASE] = {
            "seconds": round(seconds, 6),
            "uops": total_uops,
            "uops_per_sec": round(total_uops / seconds, 1),
            "traces": len(traces),
        }

    # Phase 2..N: one phase per frontend, aggregated over the suites.
    for kind in kinds:
        total_seconds = 0.0
        for trace in traces:
            seconds, _ = _time_best(
                lambda t=trace: run_frontend(kind, t), repeats
            )
            total_seconds += seconds
        phase_reports[f"frontend_{kind}"] = {
            "seconds": round(total_seconds, 6),
            "uops": total_uops,
            "uops_per_sec": round(total_uops / total_seconds, 1),
        }

    if profile_path:
        import cProfile

        profiler = cProfile.Profile()
        trace = traces[0]
        profiler.enable()
        run_frontend("xbc", trace)
        profiler.disable()
        profiler.dump_stats(profile_path)

    if load_selected:
        from repro.bench.serve import run_serve_load

        serve_load_section = run_serve_load(
            clients=load_clients,
            duration=load_duration,
            worker_counts=load_workers,
            length=min(budget, 6_000),
        )
        for stage in serve_load_section["stages"]:
            # One registry-gateable phase per worker-count stage;
            # `uops` is served (not generated) work, so the throughput
            # means "simulation uops delivered to clients per second".
            phase_reports[f"serve_load_w{stage['workers']}"] = {
                "seconds": stage["duration_seconds"],
                "uops": stage["uops"],
                "uops_per_sec": stage["uops_per_sec"],
                "requests_per_sec": stage["requests_per_sec"],
                "p50_ms": stage["p50_ms"],
                "p99_ms": stage["p99_ms"],
                "tolerance": SERVE_LOAD_TOLERANCE,
            }

    report = {
        "schema": SCHEMA,
        "rev": _git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": _cpu_affinity(),
        "budget_uops": budget,
        "quick": quick,
        "suites": list(suites),
        "repeats": repeats,
        "calibration_ops_per_sec": round(calibrate(), 1),
        "peak_rss_kb": _peak_rss_kb(),
        "phase_list": list(phase_reports),
        "phases": phase_reports,
    }
    if serve_load_section is not None:
        report["serve_load"] = serve_load_section
    return report


def write_report(
    report: dict, out_dir: str = ".", registry_dir: Optional[str] = None
) -> str:
    """Write ``BENCH_<rev>.json`` into *out_dir*; returns the path.

    When *registry_dir* is given the report is also recorded into that
    perf registry (see :mod:`repro.perf`), so a plain ``repro bench
    --registry`` run extends the trajectory in one step.
    """
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{report['rev']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if registry_dir:
        from repro.perf.registry import PerfRegistry

        PerfRegistry(registry_dir).add(report)
    return path


def format_report(report: dict) -> str:
    """Human-readable rendering of a report."""
    affinity = report.get("cpu_affinity")
    affinity_note = f" ({affinity} usable)" if affinity is not None else ""
    lines = [
        f"bench @ {report['rev']} "
        f"(python {report['python']}, "
        f"{report['cpu_count']} cpus{affinity_note}, "
        f"budget {report['budget_uops']} uops"
        f"{', quick' if report.get('quick') else ''})",
        f"  calibration: {report['calibration_ops_per_sec']:,.0f} ops/s",
    ]
    if report.get("peak_rss_kb") is not None:
        lines.append(f"  peak RSS: {report['peak_rss_kb'] / 1024:.1f} MiB")
    for name, phase in report["phases"].items():
        lines.append(
            f"  {name:<16} {phase['seconds']:8.3f}s   "
            f"{phase['uops_per_sec']:>12,.0f} uops/s"
        )
    return "\n".join(lines)


def compare_to_baseline(
    report: dict,
    baseline: dict,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Regression check; returns failure messages (empty = pass).

    The baseline's throughput is rescaled by the calibration ratio so
    a slower CI machine does not read as a code regression; a phase
    fails when its calibrated throughput drops more than the tolerance.
    A baseline phase may carry its own ``tolerance`` key (phases with
    more timing variance get a wider band), which overrides the global
    *tolerance* argument for that phase.
    """
    failures: List[str] = []
    base_cal = baseline.get("calibration_ops_per_sec") or 0
    cur_cal = report.get("calibration_ops_per_sec") or 0
    scale = (cur_cal / base_cal) if base_cal and cur_cal else 1.0
    for name, base_phase in baseline.get("phases", {}).items():
        phase = report.get("phases", {}).get(name)
        if phase is None:
            failures.append(f"{name}: present in baseline, missing from run")
            continue
        phase_tolerance = base_phase.get("tolerance", tolerance)
        expected = base_phase["uops_per_sec"] * scale
        actual = phase["uops_per_sec"]
        if actual < expected * (1.0 - phase_tolerance):
            failures.append(
                f"{name}: {actual:,.0f} uops/s < "
                f"{expected * (1.0 - phase_tolerance):,.0f} "
                f"(baseline {base_phase['uops_per_sec']:,.0f} x "
                f"calibration {scale:.2f}, tolerance {phase_tolerance:.0%})"
            )
    return failures
