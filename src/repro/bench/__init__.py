"""Performance benchmarking of the simulation core (``repro bench``).

The repo's tier-1 tests pin *what* the simulators compute; this package
pins *how fast*.  ``repro bench`` times trace generation and each
frontend at a fixed uop budget and writes a ``BENCH_<rev>.json`` report
so the repository accumulates a perf trajectory alongside its results.

Machine-to-machine comparability comes from a calibration loop: every
report embeds the score of a fixed pure-Python workload measured in the
same process, and :func:`compare_to_baseline` rescales the baseline's
throughput by the calibration ratio before applying the regression
gate.  A 30% gate on calibrated throughput catches real slowdowns
without tripping on CI machines that are merely slower overall.
"""

from repro.bench.harness import (
    REGRESSION_TOLERANCE,
    compare_to_baseline,
    format_report,
    resolve_phases,
    run_bench,
    write_report,
)
from repro.bench.serve import (
    format_serve_bench,
    format_serve_load,
    run_serve_bench,
    run_serve_load,
)

__all__ = [
    "REGRESSION_TOLERANCE",
    "compare_to_baseline",
    "format_report",
    "format_serve_bench",
    "format_serve_load",
    "resolve_phases",
    "run_bench",
    "run_serve_bench",
    "run_serve_load",
    "write_report",
]
