"""Abstract frontend model and the uop-flow (queue + renamer) helper.

Every frontend simulation follows the same outer shape: a cycle loop
that drains the renamer, checks decoupling-queue space, and then runs
either a build-mode or a delivery-mode fetch step.  The queue/renamer
mechanics are identical across models and live in :class:`UopFlow`;
the abstract :class:`FrontendModel` fixes the public interface the
harness drives.
"""

from __future__ import annotations

import abc

from repro.frontend.config import FrontendConfig
from repro.frontend.metrics import FrontendStats
from repro.trace.record import Trace


class UopFlow:
    """Decoupling uop queue feeding a fixed-width renamer.

    The queue is modelled by occupancy only — the simulators never need
    the identity of queued uops, just backpressure: fetch stalls when a
    full fetch window would not fit ([Rein99]-style decoupling).
    """

    def __init__(self, config: FrontendConfig, stats: FrontendStats) -> None:
        self.depth = config.uop_queue_depth
        self.renamer_width = config.renamer_width
        self.stats = stats
        self.occupancy = 0

    def drain(self) -> int:
        """One renamer cycle: retire up to ``renamer_width`` uops."""
        taken = min(self.occupancy, self.renamer_width)
        self.occupancy -= taken
        self.stats.retired_uops += taken
        return taken

    def drain_all(self) -> None:
        """Drain the queue to empty, counting the cycles (run epilogue)."""
        while self.occupancy > 0:
            self.stats.cycles += 1
            self.drain()

    def can_accept(self, uops: int) -> bool:
        """Whether *uops* more uops fit in the queue."""
        return self.depth - self.occupancy >= uops

    def push(self, uops: int) -> None:
        """Enqueue freshly fetched uops (callers check space first)."""
        self.occupancy += uops


class FrontendModel(abc.ABC):
    """Interface of a simulatable frontend."""

    #: short machine-readable name ("ic", "tc", "xbc", "bbtc")
    name: str = "abstract"

    def __init__(self, config: FrontendConfig) -> None:
        config.validate()
        self.config = config

    @abc.abstractmethod
    def run(self, trace: Trace) -> FrontendStats:
        """Simulate the whole trace, returning the run's statistics."""

    def describe(self) -> str:
        """Human-readable identification used in reports."""
        return self.name
