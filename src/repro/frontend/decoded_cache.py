"""Decoded (uop) cache frontend — the §2.2 comparator.

Between the plain IC and the trace cache sits the *decoded cache*: it
stores uops (skipping decode on a hit) but keeps them in static program
order, so it inherits the IC's bandwidth ceiling — one consecutive run
of instructions per cycle, broken by every taken branch.  The paper
also notes its hit rate is slightly *worse* than the IC's because
fixed-size uop lines fragment (a line must reserve the worst-case uop
space, and jump targets mid-line force duplicate lines).

The model: lines are anchored at the instruction IP that entered them
and hold the uops of consecutive instructions up to a uop quota;
control entering mid-run anchors a new (partially duplicate) line —
reproducing both fragmentation effects the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.common.bitutils import log2_exact
from repro.common.errors import ConfigError
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import Instruction, InstrKind
from repro.trace.record import Trace


@dataclass(frozen=True)
class DcConfig:
    """Geometry of the decoded cache."""

    total_uops: int = 8192
    line_uops: int = 8
    assoc: int = 4

    @property
    def num_sets(self) -> int:
        """Sets implied by the uop budget."""
        return self.total_uops // (self.line_uops * self.assoc)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent geometry."""
        if self.line_uops < 4:
            raise ConfigError("line_uops must be >= 4")
        if self.total_uops % (self.line_uops * self.assoc):
            raise ConfigError("total_uops must be divisible by line*assoc")
        try:
            log2_exact(self.num_sets)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc


class _DcLine:
    """One decoded line: consecutive instructions from an anchor IP."""

    __slots__ = ("start_ip", "instrs", "uops")

    def __init__(self, instrs: List[Instruction]) -> None:
        self.start_ip = instrs[0].ip
        self.instrs = instrs
        self.uops = sum(i.num_uops for i in instrs)


class DecodedCacheFrontend(FrontendModel):
    """Uop cache with IC-like (single-run) fetch bandwidth."""

    name = "dc"

    def __init__(
        self,
        config: Optional[FrontendConfig] = None,
        dc_config: Optional[DcConfig] = None,
    ) -> None:
        super().__init__(config if config is not None else FrontendConfig())
        dc_config = dc_config if dc_config is not None else DcConfig()
        dc_config.validate()
        self.dc_config = dc_config

    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> FrontendStats:
        """Simulate the trace with a decoded-uop cache over the IC."""
        config = self.config
        dc = self.dc_config
        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        flow = UopFlow(config, stats)
        gshare = GsharePredictor(config.gshare_history_bits, config.gshare_entries)
        rsb: ReturnStackBuffer = ReturnStackBuffer(config.rsb_depth)
        indirect: IndirectPredictor = IndirectPredictor(
            config.indirect_entries, config.indirect_history_bits
        )
        engine = BuildEngine(
            config=config,
            stats=stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=gshare,
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=rsb,
            indirect=indirect,
        )

        # line store: set -> {start_ip: (line, stamp)}
        sets: List[Dict[int, Tuple[_DcLine, int]]] = [
            {} for _ in range(dc.num_sets)
        ]
        set_mask = dc.num_sets - 1
        clock = 0

        def lookup(ip: int) -> Optional[_DcLine]:
            nonlocal clock
            bucket = sets[(ip >> 1) & set_mask]
            entry = bucket.get(ip)
            if entry is None:
                return None
            clock += 1
            bucket[ip] = (entry[0], clock)
            return entry[0]

        def insert(line: _DcLine) -> None:
            nonlocal clock
            bucket = sets[(line.start_ip >> 1) & set_mask]
            clock += 1
            if line.start_ip not in bucket and len(bucket) >= dc.assoc:
                victim = min(bucket, key=lambda k: bucket[k][1])
                del bucket[victim]
            bucket[line.start_ip] = (line, clock)

        ips = trace.ips
        takens = trace.takens
        instr_table = trace.instr_table
        total = len(trace)
        pos = 0
        delivery = False
        pending: List[Instruction] = []
        pending_uops = 0
        pending_next_ip = -1

        def close_pending() -> bool:
            nonlocal pending, pending_uops
            if not pending:
                return False
            insert(_DcLine(pending))
            stats.blocks_built += 1
            pending = []
            pending_uops = 0
            return True

        max_build_uops = 4 * config.decode_width

        while pos < total:
            stats.cycles += 1
            flow.drain()

            if delivery:
                stats.delivery_cycles += 1
                if not flow.can_accept(dc.line_uops):
                    continue
                stats.structure_lookups += 1
                line = lookup(ips[pos])
                if line is None:
                    delivery = False
                    stats.switches_to_build += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)
                    continue
                stats.structure_hits += 1
                stats.structure_fetch_cycles += 1
                uops, pos = self._consume_line(
                    line, trace, pos, stats, gshare, rsb, indirect
                )
                stats.uops_from_structure += uops
                flow.push(uops)
            else:
                stats.build_cycles += 1
                if not flow.can_accept(max_build_uops):
                    continue
                pos, cycle = engine.fetch_cycle(trace, pos)
                stats.uops_from_ic += cycle.uops
                flow.push(cycle.uops)
                for cause, cycles in cycle.penalties.items():
                    stats.add_penalty(cause, cycles)

                closed = False
                for i in range(cycle.start, cycle.end):
                    instr = instr_table[ips[i]]
                    if pending and (
                        instr.ip != pending_next_ip
                        or pending_uops + instr.num_uops > dc.line_uops
                    ):
                        closed |= close_pending()
                    pending.append(instr)
                    pending_uops += instr.num_uops
                    pending_next_ip = instr.next_ip
                    # Lines hold statically consecutive instructions, so
                    # any single-target-or-better break ends them; a
                    # conditional's fallthrough may continue in-line.
                    ends = instr.kind.is_branch and (
                        instr.kind is not InstrKind.COND_BRANCH
                        or takens[i]
                    )
                    if ends or pending_uops >= dc.line_uops:
                        closed |= close_pending()
                if closed and pos < total and lookup(ips[pos]):
                    delivery = True
                    pending = []
                    pending_uops = 0
                    stats.switches_to_delivery += 1
                    stats.add_penalty("mode_switch", config.mode_switch_penalty)

        flow.drain_all()
        stats.extra["dc_resident_lines"] = sum(len(b) for b in sets)
        stats.verify_conservation(trace.total_uops)
        return stats

    # ------------------------------------------------------------------

    def _consume_line(
        self,
        line: _DcLine,
        trace: Trace,
        pos: int,
        stats: FrontendStats,
        gshare: GsharePredictor,
        rsb: ReturnStackBuffer,
        indirect: IndirectPredictor,
    ) -> Tuple[int, int]:
        """Deliver a line against the actual path (one run per cycle)."""
        config = self.config
        ips = trace.ips
        takens = trace.takens
        next_ips = trace.next_ips
        total = len(ips)
        uops = 0
        consumed = 0
        for instr in line.instrs:
            index = pos + consumed
            if index >= total:
                break
            if ips[index] != instr.ip:
                break
            consumed += 1
            uops += instr.num_uops
            kind = instr.kind
            if kind is InstrKind.COND_BRANCH:
                taken = bool(takens[index])
                stats.cond_predictions += 1
                if not gshare.update(instr.ip, taken):
                    stats.cond_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
                    break
                if taken:
                    break  # taken branch ends the fetch run
            elif kind is InstrKind.CALL:
                rsb.push(instr.next_ip)
                break
            elif kind is InstrKind.RETURN:
                stats.return_predictions += 1
                if rsb.pop() != next_ips[index]:
                    stats.return_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
                break
            elif kind.is_indirect:
                if kind is InstrKind.INDIRECT_CALL:
                    rsb.push(instr.next_ip)
                stats.indirect_predictions += 1
                nxt = next_ips[index]
                if not indirect.update(instr.ip, nxt, nxt):
                    stats.indirect_mispredicts += 1
                    stats.add_penalty("mispredict", config.mispredict_penalty)
                break
            elif kind is InstrKind.JUMP:
                break
        return uops, pos + consumed
