"""Instruction cache model.

A conventional set-associative, LRU, physically-trivial (no translation
modelled — the paper's XBC uses virtual tags precisely to skip it)
instruction cache.  It backs build-mode fetch in every frontend and is
the whole story for the baseline :class:`~repro.frontend.ic_frontend.ICFrontend`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.bitutils import log2_exact
from repro.common.errors import ConfigError


class _CacheSet:
    __slots__ = ("lines",)

    def __init__(self) -> None:
        # line address -> LRU stamp; small dicts beat list scans here.
        self.lines: Dict[int, int] = {}


class InstructionCache:
    """Set-associative cache of instruction line addresses."""

    def __init__(
        self,
        size_bytes: int = 65536,
        line_bytes: int = 64,
        assoc: int = 4,
    ) -> None:
        if size_bytes % (line_bytes * assoc):
            raise ConfigError("IC size must be divisible by line*assoc")
        self.line_bytes = line_bytes
        self._offset_bits = log2_exact(line_bytes)
        self.num_sets = size_bytes // (line_bytes * assoc)
        log2_exact(self.num_sets)
        self.assoc = assoc
        self.size_bytes = size_bytes
        self._sets: List[_CacheSet] = [_CacheSet() for _ in range(self.num_sets)]
        self._set_mask = self.num_sets - 1
        self._clock = 0
        self.lookups = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access the line holding *address*; fills on miss.

        Returns ``True`` on hit.  Fill-on-miss is folded in because the
        frontends always allocate (no bypass paths in this study).
        """
        line_addr = address >> self._offset_bits
        cache_set = self._sets[line_addr & self._set_mask]
        self._clock += 1
        self.lookups += 1
        if line_addr in cache_set.lines:
            cache_set.lines[line_addr] = self._clock
            return True
        self.misses += 1
        if len(cache_set.lines) >= self.assoc:
            victim = min(cache_set.lines, key=cache_set.lines.get)
            del cache_set.lines[victim]
        cache_set.lines[line_addr] = self._clock
        return False

    def contains(self, address: int) -> bool:
        """Non-allocating presence probe (no LRU update, no stats)."""
        line_addr = address >> self._offset_bits
        return line_addr in self._sets[line_addr & self._set_mask].lines

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all accesses so far (1.0 before any)."""
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.misses / self.lookups
