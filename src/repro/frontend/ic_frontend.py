"""Baseline instruction-cache frontend (paper §2.1).

Always in build mode: every uop is fetched from the IC, decoded, and
delivered at decode-width.  Its bandwidth ceiling — one consecutive
run of instructions per cycle, broken by every taken branch — is the
limitation both the TC and the XBC exist to lift, and it supplies the
"uops brought from the IC" cost inside those models too.

``ports`` models the §2.1 escape hatch the paper cites ([Yeh93],
[Cont95], [Sezn96]): a multi-ported IC with multiple branch
predictions per cycle fetches several consecutive-instruction blocks,
continuing across correctly-predicted taken branches and stopping at
the first stall (mispredict, IC miss, BTB miss).

Two implementations share this class.  ``_run_flat`` is the hot path:
one fused loop over the columnar trace arrays with the gshare/BTB/RSB/
indirect predictors and the icache inlined as integer math (see
:mod:`repro.frontend.flat_engine`), plus an XBC-style queue-stall
fast-forward.  ``_run_reference`` is the original object-per-cycle
code driving :class:`~repro.frontend.build_engine.BuildEngine`, kept
behind ``REPRO_REFERENCE_FRONTEND=1`` as the behavioural oracle; both
produce bit-identical :class:`FrontendStats`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine, reference_frontends_enabled
from repro.frontend.config import FrontendConfig
from repro.frontend.flat_engine import make_flat_predictors
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import (
    CODE_CALL,
    CODE_COND_BRANCH,
    CODE_INDIRECT_CALL,
    CODE_JUMP,
    CODE_RETURN,
)
from repro.trace.record import Trace


class ICFrontend(FrontendModel):
    """Conventional frontend: IC + BTB + decoder, no uop structure."""

    name = "ic"

    def __init__(
        self,
        config: Optional[FrontendConfig] = None,
        ports: int = 1,
    ) -> None:
        super().__init__(config if config is not None else FrontendConfig())
        if ports < 1:
            raise ValueError(f"ports must be >= 1, got {ports}")
        self.ports = ports

    def run(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        """Simulate the whole trace through IC fetch + decode.

        *cycle_log*, when given, receives the uops pushed into the
        decoupling queue each cycle (0 on stall cycles); the epilogue
        drain is not logged.
        """
        if reference_frontends_enabled():
            return self._run_reference(trace, cycle_log)
        return self._run_flat(trace, cycle_log)

    # ------------------------------------------------------------------
    # flat path
    # ------------------------------------------------------------------

    def _run_flat(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        config = self.config
        ips, takens, next_ips, kinds, nuops, snexts = trace.hot_columns()
        total = len(ips)
        fp = make_flat_predictors(config)

        # predictors, hoisted
        g_counters = fp.g_counters
        g_imask = fp.g_imask
        g_hmask = fp.g_hmask
        g_hist = 0
        b_tags = fp.b_tags
        b_targets = fp.b_targets
        b_stamps = fp.b_stamps
        b_assoc = fp.b_assoc
        b_set_mask = fp.b_set_mask
        b_clock = 0
        r_slots = fp.r_slots
        r_depth = fp.r_depth
        r_top = 0
        r_count = 0
        i_tags = fp.i_tags
        i_targets = fp.i_targets
        i_imask = fp.i_imask
        i_hmask = fp.i_hmask
        i_hist = 0
        ic_sets = fp.ic_sets
        ic_set_mask = fp.ic_set_mask
        ic_offset = fp.ic_offset_bits
        icache_assoc = fp.ic_assoc
        ic_clock = 0

        # config scalars
        width = config.renamer_width
        depth = config.uop_queue_depth
        decode_width = config.decode_width
        fetch_block = config.fetch_block_bytes
        ic_lat = config.ic_miss_latency
        misp_pen = config.mispredict_penalty
        bubble = config.taken_branch_bubble
        btb_pen = config.btb_miss_penalty
        max_fetch = 4 * decode_width  # worst case 4 uops/instr
        ports = self.ports
        branch_floor = CODE_COND_BRANCH
        c_call = CODE_CALL
        c_icall = CODE_INDIRECT_CALL
        c_jump = CODE_JUMP
        c_ret = CODE_RETURN

        # counters
        cycles = 0
        build_cycles = 0
        retired = 0
        occ = 0
        from_ic = 0
        cond_pred = cond_misp = ind_pred = ind_misp = 0
        ret_pred = ret_misp = 0
        ic_lookups = ic_misses = 0
        pen: dict = {}
        pos = 0
        logging = cycle_log is not None

        while pos < total:
            cycles += 1
            build_cycles += 1
            if occ:
                t = occ if occ < width else width
                occ -= t
                retired += t
            pushed = 0
            for _port in range(ports):
                if pos >= total or depth - occ < max_fetch:
                    break
                # ---- one build fetch cycle, inlined (oracle:
                # BuildEngine.fetch_cycle) ----
                stalled = False
                ip = ips[pos]
                ic_lookups += 1
                line_addr = ip >> ic_offset
                iset = ic_sets[line_addr & ic_set_mask]
                ic_clock += 1
                if line_addr in iset:
                    iset[line_addr] = ic_clock
                else:
                    ic_misses += 1
                    if len(iset) >= icache_assoc:
                        del iset[min(iset, key=iset.get)]
                    iset[line_addr] = ic_clock
                    if ic_lat > 0:
                        cycles += ic_lat
                        pen["ic_miss"] = pen.get("ic_miss", 0) + ic_lat
                        stalled = True
                window_start = ip & ~(fetch_block - 1)
                window_end = window_start + fetch_block
                limit = pos + decode_width
                if limit > total:
                    limit = total
                cuops = 0
                while pos < limit:
                    ip = ips[pos]
                    if ip < window_start or ip >= window_end:
                        break
                    cuops += nuops[pos]
                    pos += 1
                    k = kinds[pos - 1]
                    if k >= branch_floor:
                        i = pos - 1
                        if k == branch_floor:  # conditional
                            tk = takens[i]
                            cond_pred += 1
                            gi = ((ip >> 1) ^ g_hist) & g_imask
                            c = g_counters[gi]
                            if tk:
                                if c < 3:
                                    g_counters[gi] = c + 1
                                g_hist = ((g_hist << 1) | 1) & g_hmask
                                if c < 2:  # mispredicted taken
                                    cond_misp += 1
                                    if misp_pen > 0:
                                        cycles += misp_pen
                                        pen["mispredict"] = (
                                            pen.get("mispredict", 0) + misp_pen
                                        )
                                        stalled = True
                                    break
                                # correct taken: redirect through the BTB
                                tgt = next_ips[i]
                                base = ((ip >> 1) & b_set_mask) * b_assoc
                                found = -1
                                for slot in range(base, base + b_assoc):
                                    if b_tags[slot] == ip:
                                        found = slot
                                        break
                                if found >= 0:
                                    b_clock += 1
                                    b_stamps[found] = b_clock
                                    if b_targets[found] == tgt:
                                        if bubble > 0:
                                            cycles += bubble
                                            pen["redirect"] = (
                                                pen.get("redirect", 0) + bubble
                                            )
                                    else:
                                        if btb_pen > 0:
                                            cycles += btb_pen
                                            pen["btb_miss"] = (
                                                pen.get("btb_miss", 0) + btb_pen
                                            )
                                            stalled = True
                                        b_targets[found] = tgt
                                        b_clock += 1
                                        b_stamps[found] = b_clock
                                else:
                                    if btb_pen > 0:
                                        cycles += btb_pen
                                        pen["btb_miss"] = (
                                            pen.get("btb_miss", 0) + btb_pen
                                        )
                                        stalled = True
                                    victim = -1
                                    vstamp = 0
                                    for slot in range(base, base + b_assoc):
                                        if b_tags[slot] == -1:
                                            victim = slot
                                            break
                                        s = b_stamps[slot]
                                        if victim < 0 or s < vstamp:
                                            victim = slot
                                            vstamp = s
                                    b_tags[victim] = ip
                                    b_targets[victim] = tgt
                                    b_clock += 1
                                    b_stamps[victim] = b_clock
                                break
                            else:
                                if c > 0:
                                    g_counters[gi] = c - 1
                                g_hist = (g_hist << 1) & g_hmask
                                if c >= 2:  # mispredicted not-taken
                                    cond_misp += 1
                                    if misp_pen > 0:
                                        cycles += misp_pen
                                        pen["mispredict"] = (
                                            pen.get("mispredict", 0) + misp_pen
                                        )
                                        stalled = True
                                    break
                                # correct fall-through: keep fetching
                        elif k == c_ret:
                            ret_pred += 1
                            if r_count == 0:
                                predicted = -1
                            else:
                                r_top -= 1
                                if r_top < 0:
                                    r_top = r_depth - 1
                                r_count -= 1
                                predicted = r_slots[r_top]
                            if predicted != next_ips[i]:
                                ret_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                                    stalled = True
                            elif bubble > 0:
                                cycles += bubble
                                pen["redirect"] = pen.get("redirect", 0) + bubble
                            break
                        elif k == c_call or k == c_jump:  # direct call / jump
                            if k == c_call:
                                if r_count < r_depth:
                                    r_count += 1
                                r_slots[r_top] = snexts[i]
                                r_top += 1
                                if r_top == r_depth:
                                    r_top = 0
                            tgt = next_ips[i]
                            base = ((ip >> 1) & b_set_mask) * b_assoc
                            found = -1
                            for slot in range(base, base + b_assoc):
                                if b_tags[slot] == ip:
                                    found = slot
                                    break
                            if found >= 0:
                                b_clock += 1
                                b_stamps[found] = b_clock
                                if b_targets[found] == tgt:
                                    if bubble > 0:
                                        cycles += bubble
                                        pen["redirect"] = (
                                            pen.get("redirect", 0) + bubble
                                        )
                                else:
                                    if btb_pen > 0:
                                        cycles += btb_pen
                                        pen["btb_miss"] = (
                                            pen.get("btb_miss", 0) + btb_pen
                                        )
                                        stalled = True
                                    b_targets[found] = tgt
                                    b_clock += 1
                                    b_stamps[found] = b_clock
                            else:
                                if btb_pen > 0:
                                    cycles += btb_pen
                                    pen["btb_miss"] = (
                                        pen.get("btb_miss", 0) + btb_pen
                                    )
                                    stalled = True
                                victim = -1
                                vstamp = 0
                                for slot in range(base, base + b_assoc):
                                    if b_tags[slot] == -1:
                                        victim = slot
                                        break
                                    s = b_stamps[slot]
                                    if victim < 0 or s < vstamp:
                                        victim = slot
                                        vstamp = s
                                b_tags[victim] = ip
                                b_targets[victim] = tgt
                                b_clock += 1
                                b_stamps[victim] = b_clock
                            break
                        else:  # indirect jump / indirect call
                            ind_pred += 1
                            if k == c_icall:
                                if r_count < r_depth:
                                    r_count += 1
                                r_slots[r_top] = snexts[i]
                                r_top += 1
                                if r_top == r_depth:
                                    r_top = 0
                            nxt = next_ips[i]
                            ii = ((ip >> 1) ^ (i_hist << 2)) & i_imask
                            hit = i_tags[ii] == ip and i_targets[ii] == nxt
                            i_tags[ii] = ip
                            i_targets[ii] = nxt
                            mixed = (nxt ^ (nxt >> 4) ^ (nxt >> 9)) & 0xF
                            i_hist = ((i_hist << 2) ^ mixed) & i_hmask
                            if not hit:
                                ind_misp += 1
                                if misp_pen > 0:
                                    cycles += misp_pen
                                    pen["mispredict"] = (
                                        pen.get("mispredict", 0) + misp_pen
                                    )
                                    stalled = True
                            elif bubble > 0:
                                cycles += bubble
                                pen["redirect"] = pen.get("redirect", 0) + bubble
                            break
                from_ic += cuops
                occ += cuops
                pushed += cuops
                if stalled:
                    break  # redirect resolved by the next cycle
            if logging:
                cycle_log.append(pushed)
            elif pos < total:
                # Queue-stall fast-forward: while the queue lacks room
                # for a worst-case fetch, cycles are pure full-width
                # drains — skip them in one step (cycle-exact, see the
                # XBC delivery loop).
                deficit = max_fetch - (depth - occ)
                if deficit > 0:
                    extra = (deficit + width - 1) // width - 1
                    if extra > 0 and occ >= extra * width:
                        cycles += extra
                        retired += extra * width
                        occ -= extra * width
                        build_cycles += extra
        if occ:
            cycles += (occ + width - 1) // width
            retired += occ

        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        stats.cycles = cycles
        stats.build_cycles = build_cycles
        stats.penalty_cycles = pen
        stats.uops_from_ic = from_ic
        stats.retired_uops = retired
        stats.cond_predictions = cond_pred
        stats.cond_mispredicts = cond_misp
        stats.indirect_predictions = ind_pred
        stats.indirect_mispredicts = ind_misp
        stats.return_predictions = ret_pred
        stats.return_mispredicts = ret_misp
        stats.ic_lookups = ic_lookups
        stats.ic_misses = ic_misses
        stats.verify_conservation(trace.total_uops)
        return stats

    # ------------------------------------------------------------------
    # reference path (behavioural oracle)
    # ------------------------------------------------------------------

    def _run_reference(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        config = self.config
        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        flow = UopFlow(config, stats)
        engine = BuildEngine(
            config=config,
            stats=stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=GsharePredictor(
                config.gshare_history_bits, config.gshare_entries
            ),
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=ReturnStackBuffer(config.rsb_depth),
            indirect=IndirectPredictor(
                config.indirect_entries, config.indirect_history_bits
            ),
        )

        total = len(trace)
        pos = 0
        max_fetch_uops = 4 * config.decode_width  # worst case 4 uops/instr
        while pos < total:
            stats.cycles += 1
            stats.build_cycles += 1
            flow.drain()
            pushed = 0
            for _port in range(self.ports):
                if pos >= total:
                    break
                if not flow.can_accept(max_fetch_uops):
                    break
                pos, cycle = engine.fetch_cycle(trace, pos)
                stats.uops_from_ic += cycle.uops
                flow.push(cycle.uops)
                pushed += cycle.uops
                stalled = False
                for cause, cycles in cycle.penalties.items():
                    stats.add_penalty(cause, cycles)
                    if cause in ("mispredict", "ic_miss", "btb_miss"):
                        stalled = True
                if stalled:
                    break  # redirect resolved by the next cycle
            if cycle_log is not None:
                cycle_log.append(pushed)
        flow.drain_all()
        stats.verify_conservation(trace.total_uops)
        return stats
