"""Baseline instruction-cache frontend (paper §2.1).

Always in build mode: every uop is fetched from the IC, decoded, and
delivered at decode-width.  Its bandwidth ceiling — one consecutive
run of instructions per cycle, broken by every taken branch — is the
limitation both the TC and the XBC exist to lift, and it supplies the
"uops brought from the IC" cost inside those models too.

``ports`` models the §2.1 escape hatch the paper cites ([Yeh93],
[Cont95], [Sezn96]): a multi-ported IC with multiple branch
predictions per cycle fetches several consecutive-instruction blocks,
continuing across correctly-predicted taken branches and stopping at
the first stall (mispredict, IC miss, BTB miss).
"""

from __future__ import annotations

from typing import Optional

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.trace.record import Trace


class ICFrontend(FrontendModel):
    """Conventional frontend: IC + BTB + decoder, no uop structure."""

    name = "ic"

    def __init__(
        self,
        config: Optional[FrontendConfig] = None,
        ports: int = 1,
    ) -> None:
        super().__init__(config if config is not None else FrontendConfig())
        if ports < 1:
            raise ValueError(f"ports must be >= 1, got {ports}")
        self.ports = ports

    def run(self, trace: Trace) -> FrontendStats:
        """Simulate the whole trace through IC fetch + decode."""
        config = self.config
        stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        flow = UopFlow(config, stats)
        engine = BuildEngine(
            config=config,
            stats=stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=GsharePredictor(
                config.gshare_history_bits, config.gshare_entries
            ),
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=ReturnStackBuffer(config.rsb_depth),
            indirect=IndirectPredictor(
                config.indirect_entries, config.indirect_history_bits
            ),
        )

        total = len(trace)
        pos = 0
        max_fetch_uops = 4 * config.decode_width  # worst case 4 uops/instr
        while pos < total:
            stats.cycles += 1
            stats.build_cycles += 1
            flow.drain()
            for _port in range(self.ports):
                if pos >= total:
                    break
                if not flow.can_accept(max_fetch_uops):
                    break
                pos, cycle = engine.fetch_cycle(trace, pos)
                stats.uops_from_ic += cycle.uops
                flow.push(cycle.uops)
                stalled = False
                for cause, cycles in cycle.penalties.items():
                    stats.add_penalty(cause, cycles)
                    if cause in ("mispredict", "ic_miss", "btb_miss"):
                        stalled = True
                if stalled:
                    break  # redirect resolved by the next cycle
        flow.drain_all()
        stats.verify_conservation(trace.total_uops)
        return stats
