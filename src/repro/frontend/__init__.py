"""Shared frontend machinery.

Everything the three frontend models (IC, TC, XBC) have in common lives
here: the configuration dataclass, the metrics container whose
``uop_miss_rate`` / bandwidth properties are the paper's reported
quantities, the instruction-cache model, the build-mode fetch/decode
engine (the "traditional IC based frontend" at the top of Figure 6),
and the abstract :class:`~repro.frontend.base.FrontendModel` driver.
"""

from repro.frontend.config import FrontendConfig
from repro.frontend.metrics import FrontendStats
from repro.frontend.icache import InstructionCache
from repro.frontend.build_engine import BuildEngine, BuildCycle
from repro.frontend.base import FrontendModel
from repro.frontend.ic_frontend import ICFrontend
from repro.frontend.decoded_cache import DcConfig, DecodedCacheFrontend

__all__ = [
    "FrontendConfig",
    "FrontendStats",
    "InstructionCache",
    "BuildEngine",
    "BuildCycle",
    "FrontendModel",
    "ICFrontend",
    "DcConfig",
    "DecodedCacheFrontend",
]
