"""Packed predictor/icache state for the flat frontend hot paths.

The flat rewrites of the IC/DC/TC/BBTC frontends (the PR-2 XBC
playbook applied to the comparison models) fuse fetch, predict and
deliver into one loop per run, with every predictor inlined as integer
math over flat lists.  This module owns the *construction* of that
state so all four frontends initialize identically — the loops
themselves hoist these fields into locals and never call back in.

Layouts (mirroring the packed classes in :mod:`repro.branch` and
:mod:`repro.frontend.icache`, which remain the behavioural oracles):

- gshare: ``g_counters`` list of 2-bit counters, index
  ``((ip >> 1) ^ hist) & g_imask``;
- BTB: three flat lists indexed ``set * assoc + way`` with ``-1`` tag
  for an empty way and monotone LRU stamps;
- RSB: fixed list ring with explicit top/count (underflow pops ``-1``,
  which no address equals);
- indirect: parallel tag/target lists, index
  ``((ip >> 1) ^ (hist << 2)) & i_imask``, full-ip tags;
- icache: one ``{line_addr: stamp}`` dict per set, min-stamp eviction.
"""

from __future__ import annotations

from repro.common.bitutils import log2_exact
from repro.frontend.config import FrontendConfig
from repro.isa.instruction import (
    CODE_CALL,
    CODE_COND_BRANCH,
    CODE_INDIRECT_CALL,
    CODE_INDIRECT_JUMP,
    CODE_JUMP,
    CODE_RETURN,
    KIND_IS_BRANCH,
)

# The flat loops classify branches with a single compare against the
# first branch code instead of a table lookup; pin the code layout that
# makes that sound.
assert all(
    (code >= CODE_COND_BRANCH) == KIND_IS_BRANCH[code]
    for code in range(len(KIND_IS_BRANCH))
), "kind codes no longer place all branches at >= CODE_COND_BRANCH"
assert CODE_COND_BRANCH < CODE_JUMP < CODE_INDIRECT_JUMP < CODE_CALL
assert CODE_CALL < CODE_INDIRECT_CALL < CODE_RETURN


class FlatPredictors:
    """Initial predictor + icache state for one flat frontend run."""

    __slots__ = (
        "g_counters", "g_imask", "g_hmask",
        "b_tags", "b_targets", "b_stamps", "b_assoc", "b_set_mask",
        "r_slots", "r_depth",
        "i_tags", "i_targets", "i_imask", "i_hmask",
        "ic_sets", "ic_set_mask", "ic_offset_bits", "ic_assoc",
    )


def make_flat_predictors(config: FrontendConfig) -> FlatPredictors:
    """Build the packed state, with the oracles' geometry validation."""
    p = FlatPredictors()

    log2_exact(config.gshare_entries)
    if not 0 <= config.gshare_history_bits <= 30:
        raise ValueError(
            f"history_bits out of range: {config.gshare_history_bits}"
        )
    # Counters start weakly taken, as in GsharePredictor.
    p.g_counters = [2] * config.gshare_entries
    p.g_imask = config.gshare_entries - 1
    p.g_hmask = (1 << config.gshare_history_bits) - 1

    if config.btb_entries % config.btb_assoc:
        raise ValueError(
            f"{config.btb_entries} entries not divisible by "
            f"assoc {config.btb_assoc}"
        )
    num_sets = config.btb_entries // config.btb_assoc
    log2_exact(num_sets)
    p.b_assoc = config.btb_assoc
    p.b_set_mask = num_sets - 1
    p.b_tags = [-1] * config.btb_entries
    p.b_targets = [0] * config.btb_entries
    p.b_stamps = [0] * config.btb_entries

    if config.rsb_depth < 1:
        raise ValueError(f"RSB depth must be >= 1, got {config.rsb_depth}")
    p.r_depth = config.rsb_depth
    p.r_slots = [0] * config.rsb_depth

    log2_exact(config.indirect_entries)
    p.i_tags = [-1] * config.indirect_entries
    p.i_targets = [0] * config.indirect_entries
    p.i_imask = config.indirect_entries - 1
    p.i_hmask = (1 << config.indirect_history_bits) - 1

    line = config.ic_line_bytes
    p.ic_offset_bits = log2_exact(line)
    ic_sets = config.ic_size_bytes // (line * config.ic_assoc)
    log2_exact(ic_sets)
    p.ic_sets = [{} for _ in range(ic_sets)]
    p.ic_set_mask = ic_sets - 1
    p.ic_assoc = config.ic_assoc
    return p
