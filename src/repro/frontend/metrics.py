"""Per-run frontend statistics.

One :class:`FrontendStats` is produced per (frontend, trace) simulation.
The two headline quantities of the paper's evaluation are properties
here:

- :attr:`FrontendStats.uop_miss_rate` — "percent of uops brought from
  the IC" (Figures 9 and 10);
- :attr:`FrontendStats.fetch_bandwidth` — uops fetched from the
  structure per structure-access cycle (Figure 8).

Structure-specific counters (bank conflicts, promotions, set searches…)
go into the :attr:`FrontendStats.extra` mapping so the container stays
shared across models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FrontendStats:
    """Counters and derived metrics for one simulation run."""

    frontend: str = ""
    trace_name: str = ""

    # -- cycles -----------------------------------------------------------------
    cycles: int = 0
    build_cycles: int = 0
    delivery_cycles: int = 0
    #: cycles spent on penalties, keyed by cause ("mispredict",
    #: "ic_miss", "mode_switch", "set_search", "btb_miss", ...).
    penalty_cycles: Dict[str, int] = field(default_factory=dict)

    # -- uop supply ---------------------------------------------------------------
    uops_from_ic: int = 0         # supplied in build mode
    uops_from_structure: int = 0  # supplied in delivery mode
    retired_uops: int = 0         # drained by the renamer

    # -- fetch activity -------------------------------------------------------------
    structure_fetch_cycles: int = 0  # delivery cycles with an actual fetch
    structure_lookups: int = 0
    structure_hits: int = 0
    blocks_built: int = 0

    # -- mode transitions --------------------------------------------------------
    switches_to_delivery: int = 0
    switches_to_build: int = 0

    # -- prediction ----------------------------------------------------------------
    cond_predictions: int = 0
    cond_mispredicts: int = 0
    indirect_predictions: int = 0
    indirect_mispredicts: int = 0
    return_predictions: int = 0
    return_mispredicts: int = 0

    # -- IC -------------------------------------------------------------------------
    ic_lookups: int = 0
    ic_misses: int = 0

    #: structure-specific counters (bank conflicts, promotions, ...).
    extra: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------

    def add_penalty(self, cause: str, cycles: int) -> None:
        """Charge *cycles* of penalty attributed to *cause*."""
        if cycles <= 0:
            return
        self.cycles += cycles
        self.penalty_cycles[cause] = self.penalty_cycles.get(cause, 0) + cycles

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a structure-specific counter in :attr:`extra`."""
        self.extra[counter] = self.extra.get(counter, 0) + amount

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    @property
    def total_uops(self) -> int:
        """All uops supplied to the machine."""
        return self.uops_from_ic + self.uops_from_structure

    @property
    def uop_miss_rate(self) -> float:
        """Fraction of uops brought from the IC — the paper's miss rate."""
        if self.total_uops == 0:
            return 0.0
        return self.uops_from_ic / self.total_uops

    @property
    def uop_hit_rate(self) -> float:
        """Complement of :attr:`uop_miss_rate`."""
        return 1.0 - self.uop_miss_rate

    @property
    def fetch_bandwidth(self) -> float:
        """Uops per structure-access cycle while in delivery mode.

        This is the Figure-8 quantity: bandwidth "defined only for hits
        (uops from delivery mode)".
        """
        if self.structure_fetch_cycles == 0:
            return 0.0
        return self.uops_from_structure / self.structure_fetch_cycles

    @property
    def delivery_bandwidth(self) -> float:
        """Uops per delivery-mode issue cycle (penalty stalls tracked
        separately in :attr:`penalty_cycles`, not in the denominator)."""
        if self.delivery_cycles == 0:
            return 0.0
        return self.uops_from_structure / self.delivery_cycles

    @property
    def overall_bandwidth(self) -> float:
        """Supplied uops per total cycle (both modes, all stalls)."""
        if self.cycles == 0:
            return 0.0
        return self.total_uops / self.cycles

    @property
    def structure_hit_rate(self) -> float:
        """Lookup-granular hit rate of the structure."""
        if self.structure_lookups == 0:
            return 0.0
        return self.structure_hits / self.structure_lookups

    @property
    def cond_accuracy(self) -> float:
        """Conditional-direction prediction accuracy."""
        if self.cond_predictions == 0:
            return 1.0
        return 1.0 - self.cond_mispredicts / self.cond_predictions

    @property
    def ic_hit_rate(self) -> float:
        """Instruction-cache hit rate."""
        if self.ic_lookups == 0:
            return 1.0
        return 1.0 - self.ic_misses / self.ic_lookups

    @property
    def total_penalty_cycles(self) -> int:
        """Sum over all penalty causes."""
        return sum(self.penalty_cycles.values())

    def phase_breakdown(self) -> Dict[str, float]:
        """Cycle shares in the paper-intro's three-phase framing.

        The paper opens with a rule of thumb — ~50% steady state, ~30%
        transition, ~20% stall.  Mapped onto this simulator: delivery
        cycles are steady-state supply, build cycles are the transition
        (ramping the structure back up through the IC), and penalty
        cycles (mispredict re-steers, IC misses, mode switches) are the
        stalls.  Fractions sum to 1 when any cycles were simulated.
        """
        total = self.cycles
        if total == 0:
            return {"steady": 0.0, "transition": 0.0, "stall": 0.0}
        stall = self.total_penalty_cycles
        steady = self.delivery_cycles
        transition = self.build_cycles
        other = total - steady - transition - stall
        return {
            "steady": (steady + max(0, other)) / total,
            "transition": transition / total,
            "stall": stall / total,
        }

    def verify_conservation(self, expected_uops: int) -> None:
        """Assert every trace uop was supplied exactly once.

        Frontends call this at the end of ``run``; a failure is always
        a simulator bug, never a workload property.
        """
        from repro.common.errors import SimulationError

        if self.total_uops != expected_uops:
            raise SimulationError(
                f"{self.frontend}: supplied {self.total_uops} uops, "
                f"trace has {expected_uops} (accounting bug)"
            )

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"frontend={self.frontend} trace={self.trace_name}",
            f"  uops: total={self.total_uops} from_ic={self.uops_from_ic} "
            f"from_structure={self.uops_from_structure}",
            f"  uop miss rate: {self.uop_miss_rate:.4f}",
            f"  fetch bandwidth: {self.fetch_bandwidth:.2f} uops/cycle "
            f"(delivery {self.delivery_bandwidth:.2f}, overall "
            f"{self.overall_bandwidth:.2f})",
            f"  cycles: {self.cycles} (build={self.build_cycles}, "
            f"delivery={self.delivery_cycles}, penalties="
            f"{self.total_penalty_cycles})",
            f"  cond accuracy: {self.cond_accuracy:.4f} "
            f"({self.cond_predictions} predictions)",
            f"  mode switches: to_delivery={self.switches_to_delivery} "
            f"to_build={self.switches_to_build}",
        ]
        if self.extra:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(self.extra.items()))
            lines.append(f"  extra: {pairs}")
        return "\n".join(lines)
