"""Frontend configuration shared by every model.

The values mirror the paper's §4 setup where stated (renamer bandwidth
of 8 uops/cycle, 16-bit-history gshare) and late-1990s conventional
values where the paper is silent (IC geometry, penalties).  All of it
is overridable; the ablation benches sweep several of these knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitutils import log2_exact
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class FrontendConfig:
    """Knobs common to the IC, TC and XBC frontends."""

    # -- downstream consumer ---------------------------------------------------
    #: uops the renamer accepts per cycle (the paper's stated limit).
    renamer_width: int = 8
    #: decoupling uop-queue depth between fetch and rename.
    uop_queue_depth: int = 48

    # -- build-mode fetch/decode -------------------------------------------------
    #: instructions decoded per cycle in build mode.
    decode_width: int = 4
    #: bytes per aligned IC fetch window.
    fetch_block_bytes: int = 16
    #: pipeline bubble on a taken branch redirect with a BTB hit.
    taken_branch_bubble: int = 1
    #: extra cycles when a taken branch misses the BTB.
    btb_miss_penalty: int = 2

    # -- instruction cache -------------------------------------------------------
    ic_size_bytes: int = 65536
    ic_line_bytes: int = 64
    ic_assoc: int = 4
    #: cycles to fill an IC line from the next level.
    ic_miss_latency: int = 12

    # -- penalties ----------------------------------------------------------------
    #: frontend re-steer cost of a mispredicted branch.
    mispredict_penalty: int = 8
    #: pipeline refill when switching between build and delivery modes.
    mode_switch_penalty: int = 2

    # -- predictors ----------------------------------------------------------------
    gshare_history_bits: int = 16
    gshare_entries: int = 65536
    btb_entries: int = 2048
    btb_assoc: int = 4
    rsb_depth: int = 16
    indirect_entries: int = 1024
    indirect_history_bits: int = 8

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent values."""
        if self.renamer_width < 1:
            raise ConfigError("renamer_width must be >= 1")
        if self.uop_queue_depth < 16:
            raise ConfigError(
                "uop_queue_depth must be >= 16 (one full fetch window)"
            )
        if self.decode_width < 1:
            raise ConfigError("decode_width must be >= 1")
        try:
            log2_exact(self.fetch_block_bytes)
            log2_exact(self.ic_line_bytes)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc
        if self.fetch_block_bytes > self.ic_line_bytes:
            raise ConfigError("fetch block must not exceed an IC line")
        if self.ic_size_bytes % (self.ic_line_bytes * self.ic_assoc):
            raise ConfigError("IC size must be divisible by line*assoc")
        for name in (
            "taken_branch_bubble",
            "btb_miss_penalty",
            "ic_miss_latency",
            "mispredict_penalty",
            "mode_switch_penalty",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
