"""Build-mode fetch/decode engine.

This models the "traditional IC based frontend" in the upper half of
the paper's Figure 6: BTB-steered fetch of aligned blocks from the
instruction cache, decode-width-limited translation into uops.  All
three frontend models share it — the TC and XBC run it whenever they
are in build mode and feed its output to their fill units, while the
baseline IC frontend runs it exclusively.

One call to :meth:`BuildEngine.fetch_cycle` is one build-mode cycle:
it supplies the instructions fetched and decoded that cycle (following
the *actual* trace path; prediction quality is charged as stall cycles,
the standard trace-driven-frontend treatment) plus the penalty cycles
incurred.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import InstrKind
from repro.trace.record import DynInstr


@dataclass
class BuildCycle:
    """What one build-mode cycle produced."""

    records: List[DynInstr] = field(default_factory=list)
    uops: int = 0
    #: stall cycles by cause, to be charged by the caller.
    penalties: Dict[str, int] = field(default_factory=dict)

    def charge(self, cause: str, cycles: int) -> None:
        """Accumulate penalty cycles under a cause label."""
        if cycles > 0:
            self.penalties[cause] = self.penalties.get(cause, 0) + cycles

    @property
    def stall_cycles(self) -> int:
        """Total penalty cycles this fetch cycle incurred."""
        return sum(self.penalties.values())


class BuildEngine:
    """Shared build-mode fetch pipeline."""

    def __init__(
        self,
        config: FrontendConfig,
        stats: FrontendStats,
        icache: InstructionCache,
        cond_predictor: GsharePredictor,
        btb: BranchTargetBuffer,
        rsb: ReturnStackBuffer,
        indirect: IndirectPredictor,
    ) -> None:
        self.config = config
        self.stats = stats
        self.icache = icache
        self.cond_predictor = cond_predictor
        self.btb = btb
        self.rsb = rsb
        self.indirect = indirect

    def fetch_cycle(
        self,
        records: List[DynInstr],
        pos: int,
    ) -> Tuple[int, BuildCycle]:
        """Run one build-mode cycle starting at trace position *pos*.

        Returns the new trace position and the cycle's results.  Fetch
        stops at the decode-width limit, at the fetch-block boundary,
        or after the first control transfer (taken branch or call/ret).
        """
        config = self.config
        cycle = BuildCycle()
        record = records[pos]

        self.stats.ic_lookups += 1
        if not self.icache.access(record.ip):
            self.stats.ic_misses += 1
            cycle.charge("ic_miss", config.ic_miss_latency)

        window_start = record.ip & ~(config.fetch_block_bytes - 1)
        window_end = window_start + config.fetch_block_bytes

        while len(cycle.records) < config.decode_width and pos < len(records):
            record = records[pos]
            if not window_start <= record.ip < window_end:
                break  # sequential prefetch continues next cycle
            cycle.records.append(record)
            cycle.uops += record.instr.num_uops
            pos += 1
            if record.instr.kind.is_branch:
                redirected = self._handle_branch(record, cycle)
                if redirected:
                    break
        return pos, cycle

    # ------------------------------------------------------------------

    def _handle_branch(self, record: DynInstr, cycle: BuildCycle) -> bool:
        """Predict/train on a branch; returns True when fetch must stop."""
        config = self.config
        stats = self.stats
        kind = record.instr.kind
        ip = record.ip

        if kind is InstrKind.COND_BRANCH:
            stats.cond_predictions += 1
            correct = self.cond_predictor.update(ip, record.taken)
            if not correct:
                stats.cond_mispredicts += 1
                cycle.charge("mispredict", config.mispredict_penalty)
                return True
            if record.taken:
                self._charge_redirect(ip, record.next_ip, cycle)
                return True
            return False

        if kind is InstrKind.JUMP:
            self._charge_redirect(ip, record.next_ip, cycle)
            return True

        if kind is InstrKind.CALL:
            self.rsb.push(record.instr.next_ip)
            self._charge_redirect(ip, record.next_ip, cycle)
            return True

        if kind is InstrKind.RETURN:
            stats.return_predictions += 1
            predicted = self.rsb.pop()
            if predicted != record.next_ip:
                stats.return_mispredicts += 1
                cycle.charge("mispredict", config.mispredict_penalty)
            else:
                cycle.charge("redirect", config.taken_branch_bubble)
            return True

        # Indirect jump or indirect call.
        stats.indirect_predictions += 1
        if kind is InstrKind.INDIRECT_CALL:
            self.rsb.push(record.instr.next_ip)
        correct = self.indirect.update(ip, record.next_ip, record.next_ip)
        if not correct:
            stats.indirect_mispredicts += 1
            cycle.charge("mispredict", config.mispredict_penalty)
        else:
            cycle.charge("redirect", config.taken_branch_bubble)
        return True

    def _charge_redirect(self, ip: int, target: int, cycle: BuildCycle) -> None:
        """Charge the redirect cost of a taken direct branch via the BTB."""
        predicted = self.btb.lookup(ip)
        if predicted == target:
            cycle.charge("redirect", self.config.taken_branch_bubble)
        else:
            cycle.charge("btb_miss", self.config.btb_miss_penalty)
            self.btb.install(ip, target)
