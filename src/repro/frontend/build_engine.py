"""Build-mode fetch/decode engine.

This models the "traditional IC based frontend" in the upper half of
the paper's Figure 6: BTB-steered fetch of aligned blocks from the
instruction cache, decode-width-limited translation into uops.  All
three frontend models share it — the TC and XBC run it whenever they
are in build mode and feed its output to their fill units, while the
baseline IC frontend runs it exclusively.

One call to :meth:`BuildEngine.fetch_cycle` is one build-mode cycle:
it supplies the instructions fetched and decoded that cycle (following
the *actual* trace path; prediction quality is charged as stall cycles,
the standard trace-driven-frontend treatment) plus the penalty cycles
incurred.  The engine walks the trace's packed columns directly; the
cycle reports the covered record range, with the classic per-record
list available lazily as :attr:`BuildCycle.records`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import (
    CODE_CALL,
    CODE_COND_BRANCH,
    CODE_INDIRECT_CALL,
    CODE_JUMP,
    CODE_RETURN,
    KIND_IS_BRANCH,
)
from repro.trace.record import DynInstr, Trace


def reference_frontends_enabled() -> bool:
    """Whether ``REPRO_REFERENCE_FRONTEND`` selects the original paths.

    The IC/DC/TC/BBTC frontends each keep their pre-flat implementation
    as ``_run_reference``; setting the variable to anything but ``""``
    or ``"0"`` routes ``run()`` through it.  The differential tests in
    ``tests/frontend/test_flat_equivalence.py`` compare both paths and
    require bit-identical statistics.
    """
    return os.environ.get("REPRO_REFERENCE_FRONTEND", "") not in ("", "0")


@dataclass
class BuildCycle:
    """What one build-mode cycle produced.

    ``trace``/``start``/``end`` name the record range fetched this
    cycle; :attr:`records` materializes the per-record view on demand.
    """

    trace: Optional[Trace] = None
    start: int = 0
    end: int = 0
    uops: int = 0
    #: stall cycles by cause, to be charged by the caller.
    penalties: Dict[str, int] = field(default_factory=dict)

    def charge(self, cause: str, cycles: int) -> None:
        """Accumulate penalty cycles under a cause label."""
        if cycles > 0:
            self.penalties[cause] = self.penalties.get(cause, 0) + cycles

    @property
    def records(self) -> List[DynInstr]:
        """The fetched records as :class:`DynInstr` objects (lazy)."""
        trace = self.trace
        if trace is None or self.end <= self.start:
            return []
        table = trace.instr_table
        ips = trace.ips
        takens = trace.takens
        next_ips = trace.next_ips
        return [
            DynInstr(
                instr=table[ips[i]], taken=bool(takens[i]), next_ip=next_ips[i]
            )
            for i in range(self.start, self.end)
        ]

    @property
    def stall_cycles(self) -> int:
        """Total penalty cycles this fetch cycle incurred."""
        return sum(self.penalties.values())


class BuildEngine:
    """Shared build-mode fetch pipeline."""

    def __init__(
        self,
        config: FrontendConfig,
        stats: FrontendStats,
        icache: InstructionCache,
        cond_predictor: GsharePredictor,
        btb: BranchTargetBuffer,
        rsb: ReturnStackBuffer,
        indirect: IndirectPredictor,
    ) -> None:
        self.config = config
        self.stats = stats
        self.icache = icache
        self.cond_predictor = cond_predictor
        self.btb = btb
        self.rsb = rsb
        self.indirect = indirect

    def fetch_cycle(
        self,
        trace: Trace,
        pos: int,
    ) -> Tuple[int, BuildCycle]:
        """Run one build-mode cycle starting at trace position *pos*.

        Returns the new trace position and the cycle's results.  Fetch
        stops at the decode-width limit, at the fetch-block boundary,
        or after the first control transfer (taken branch or call/ret).
        """
        config = self.config
        ips = trace.ips
        kinds = trace.kinds
        nuops = trace.nuops
        is_branch = KIND_IS_BRANCH
        cycle = BuildCycle(trace=trace, start=pos, end=pos)
        ip = ips[pos]

        self.stats.ic_lookups += 1
        if not self.icache.access(ip):
            self.stats.ic_misses += 1
            cycle.charge("ic_miss", config.ic_miss_latency)

        window_start = ip & ~(config.fetch_block_bytes - 1)
        window_end = window_start + config.fetch_block_bytes

        total = len(ips)
        limit = min(total, pos + config.decode_width)
        uops = 0
        while pos < limit:
            ip = ips[pos]
            if not window_start <= ip < window_end:
                break  # sequential prefetch continues next cycle
            uops += nuops[pos]
            pos += 1
            if is_branch[kinds[pos - 1]]:
                cycle.uops = uops
                redirected = self._handle_branch(trace, pos - 1, cycle)
                if redirected:
                    break
        cycle.uops = uops
        cycle.end = pos
        return pos, cycle

    # ------------------------------------------------------------------

    def _handle_branch(self, trace: Trace, index: int, cycle: BuildCycle) -> bool:
        """Predict/train on a branch; returns True when fetch must stop."""
        config = self.config
        stats = self.stats
        code = trace.kinds[index]
        ip = trace.ips[index]
        next_ip = trace.next_ips[index]

        if code == CODE_COND_BRANCH:
            taken = bool(trace.takens[index])
            stats.cond_predictions += 1
            correct = self.cond_predictor.update(ip, taken)
            if not correct:
                stats.cond_mispredicts += 1
                cycle.charge("mispredict", config.mispredict_penalty)
                return True
            if taken:
                self._charge_redirect(ip, next_ip, cycle)
                return True
            return False

        if code == CODE_JUMP:
            self._charge_redirect(ip, next_ip, cycle)
            return True

        if code == CODE_CALL:
            self.rsb.push(trace.snexts[index])
            self._charge_redirect(ip, next_ip, cycle)
            return True

        if code == CODE_RETURN:
            stats.return_predictions += 1
            predicted = self.rsb.pop()
            if predicted != next_ip:
                stats.return_mispredicts += 1
                cycle.charge("mispredict", config.mispredict_penalty)
            else:
                cycle.charge("redirect", config.taken_branch_bubble)
            return True

        # Indirect jump or indirect call.
        stats.indirect_predictions += 1
        if code == CODE_INDIRECT_CALL:
            self.rsb.push(trace.snexts[index])
        correct = self.indirect.update(ip, next_ip, next_ip)
        if not correct:
            stats.indirect_mispredicts += 1
            cycle.charge("mispredict", config.mispredict_penalty)
        else:
            cycle.charge("redirect", config.taken_branch_bubble)
        return True

    def _charge_redirect(self, ip: int, target: int, cycle: BuildCycle) -> None:
        """Charge the redirect cost of a taken direct branch via the BTB."""
        predicted = self.btb.lookup(ip)
        if predicted == target:
            cycle.charge("redirect", self.config.taken_branch_bubble)
        else:
            cycle.charge("btb_miss", self.config.btb_miss_penalty)
            self.btb.install(ip, target)
