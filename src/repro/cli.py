"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artifacts:

- ``fig1`` / ``fig8`` / ``fig9`` / ``fig10`` — regenerate a figure;
- ``claims`` — the §4/§5 in-text claims (T2, T3);
- ``ablate`` — §3 design-choice ablations;
- ``scenario`` — the widened XBC-vs-TC matrix: paper suites, the
  server profile family, and fuzz findings on one table;
- ``fuzz`` — adversarial profile search for XBC-vs-TC inversions
  (``run`` / ``replay`` / ``minimize`` / ``report``, see
  ``docs/workloads.md``);
- ``run`` — simulate one frontend on one synthetic trace;
- ``bench`` — time the simulation core, write a ``BENCH_<rev>.json``;
- ``info`` — describe the registry workloads (``--json`` for scripts);
- ``serve`` / ``submit`` / ``jobs`` — the long-running simulation
  service and its client (see ``docs/serving.md``);
- ``cache`` — manage the persistent trace/result cache (``prune``);
- ``perf`` — continuous performance tracking: record bench reports
  into a rev-keyed registry, view the calibrated trajectory
  (``perf log`` / ``perf diff``), and run the statistical regression
  gate (``perf gate``) — see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.common.errors import ConfigError, ReproError
from repro.exec.cache import default_cache_dir, disk_cache_stats, prune_cache
from repro.exec.engine import ExecPolicy
from repro.frontend.config import FrontendConfig
from repro.harness.registry import (
    default_registry,
    make_trace,
    registry_spec,
    trace_cache_stats,
)
from repro.harness.runner import FRONTEND_KINDS, run_frontend
from repro.harness.experiments import (
    format_ablations,
    format_claims,
    format_fig1,
    format_fig8,
    format_fig9,
    format_fig10,
    run_ablations,
    run_claims,
    run_fig1,
    run_fig8,
    run_fig9,
    run_fig10,
)
from repro.harness import results
from repro.perf.cli import add_perf_parser, dispatch_perf
from repro.program.profiles import SERVER_NAMES, SUITE_NAMES


def _maybe_csv(args, table) -> None:
    if getattr(args, "csv", None):
        results.write_csv(table, args.csv)
        print(f"[csv written to {args.csv}]")


def _run_all(args) -> None:
    """Run every figure + claims, writing text and CSV artifacts."""
    os.makedirs(args.out, exist_ok=True)
    specs = _registry(args)
    policy = _policy(args)

    fig1 = run_fig1(specs, policy=policy)
    fig8 = run_fig8(specs, policy=policy)
    fig9 = run_fig9(specs, policy=policy)
    fig10 = run_fig10(specs, policy=policy)
    claims = run_claims(specs, fig9=fig9)
    ablations = run_ablations(specs, policy=policy)

    artifacts = [
        ("fig1", format_fig1(fig1), results.fig1_table(fig1)),
        ("fig8", format_fig8(fig8), results.fig8_table(fig8)),
        ("fig9", format_fig9(fig9), results.fig9_table(fig9)),
        ("fig10", format_fig10(fig10), results.fig10_table(fig10)),
        ("claims", format_claims(claims), results.claims_table(claims)),
        ("ablations", format_ablations(ablations),
         results.ablations_table(ablations)),
    ]
    for name, text, table in artifacts:
        print(text)
        print()
        with open(os.path.join(args.out, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")
        results.write_csv(table, os.path.join(args.out, f"{name}.csv"))
    print(f"[wrote {len(artifacts)} x (txt, csv) into {args.out}/]")


def _add_registry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--traces-per-suite", type=int, default=3,
        help="synthetic traces per suite (default 3; paper used 8/8/5)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's 8/8/5 trace counts",
    )
    parser.add_argument(
        "--length", type=int, default=150_000,
        help="dynamic trace length in uops (default 150000)",
    )
    parser.add_argument(
        "--suite", choices=SUITE_NAMES, default=None,
        help="restrict to one suite",
    )


def _registry(args: argparse.Namespace):
    suites = [args.suite] if args.suite else None
    return default_registry(
        traces_per_suite=args.traces_per_suite,
        length_uops=args.length,
        full=args.full,
        suites=suites,
    )


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation jobs (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent trace/result cache root "
        "(default ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent cache for this run",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout (default: unlimited)",
    )


def _policy(args: argparse.Namespace) -> ExecPolicy:
    """Build the execution policy from the shared CLI flags."""
    return ExecPolicy(
        workers=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout=args.job_timeout,
        progress=True,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="eXtended Block Cache (HPCA 2000) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="block-length distributions (Figure 1)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--histograms", action="store_true",
                   help="also print the full distributions")
    p.add_argument("--csv", metavar="FILE", default=None,
                   help="also write the series as CSV")

    p = sub.add_parser("fig8", help="XBC vs TC bandwidth per trace (Figure 8)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--size", type=int, default=8192, help="uop budget")
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser("fig9", help="miss rate vs cache size (Figure 9)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[2048, 4096, 8192, 16384])
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser("fig10", help="miss rate vs associativity (Figure 10)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--size", type=int, default=16384, help="uop budget")
    p.add_argument("--assocs", type=int, nargs="+", default=[1, 2, 4])
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser("claims", help="§4/§5 in-text claims (T2, T3)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[2048, 4096, 8192, 16384])
    p.add_argument("--reference-size", type=int, default=8192)
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser("ablate", help="XBC design-choice ablations")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--size", type=int, default=8192, help="uop budget")
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser(
        "scenario",
        help="XBC vs TC hit rates across paper suites, the server "
        "family, and fuzz findings",
    )
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--size", type=int, default=8192, help="uop budget")
    p.add_argument("--server-traces", type=int, default=1, metavar="N",
                   help="traces per server profile (default 1; 0 drops "
                   "the server group)")
    p.add_argument("--server-uops", type=int, default=None, metavar="N",
                   help="override the server profiles' static footprint "
                   "(native multi-hundred-k targets are slow to "
                   "generate; CI smoke uses a small override)")
    p.add_argument("--findings", metavar="FILE", default=None,
                   help="findings corpus to include (repro fuzz run)")
    p.add_argument("--top", type=int, default=3, metavar="K",
                   help="corpus findings to include (default 3)")
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser(
        "all", help="run every figure + claims, writing text and CSV"
    )
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--out", metavar="DIR", default="results",
                   help="output directory (default ./results)")

    p = sub.add_parser("run", help="simulate one frontend on one trace")
    p.add_argument("frontend", choices=FRONTEND_KINDS)
    p.add_argument("--suite", choices=SUITE_NAMES, default="specint")
    p.add_argument("--index", type=int, default=0)
    # The columnar core made longer default runs free; experiments
    # keep their own pinned lengths, so results are unaffected.
    p.add_argument("--length", type=int, default=400_000)
    p.add_argument("--size", type=int, default=8192)

    p = sub.add_parser(
        "bench", help="time trace generation and each frontend; "
        "write BENCH_<rev>.json"
    )
    p.add_argument("--budget", type=int, default=150_000,
                   help="dynamic trace length in uops (default 150000)")
    p.add_argument("--quick", action="store_true",
                   help="smaller budget and one suite (CI smoke mode)")
    p.add_argument("--frontend", action="append", default=None,
                   choices=FRONTEND_KINDS, metavar="KIND",
                   help="bench only these frontends (repeatable)")
    p.add_argument("--phases", metavar="LIST", default=None,
                   help="comma-separated phases to time: trace_gen, "
                   "serve_load and/or frontend kinds (e.g. --phases "
                   "tc,dc); traces are still generated, untimed, when "
                   "trace_gen is filtered out but frontends run")
    p.add_argument("--profile", metavar="FILE", default=None,
                   help="also cProfile one xbc run, dump stats to FILE")
    p.add_argument("--out", metavar="DIR", default=".",
                   help="directory for BENCH_<rev>.json (default .)")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="compare against a baseline report; exit 1 on "
                   ">30%% calibrated-throughput regression")
    p.add_argument("--serve", action="store_true",
                   help="also measure serve-mode request latency "
                   "(cold + warm p50/p95 over HTTP)")
    p.add_argument("--serve-load", action="store_true",
                   help="also run the saturation load harness: many "
                   "concurrent clients, mixed cold/warm traffic, one "
                   "stage per --load-workers count")
    p.add_argument("--load-workers", metavar="LIST", default=None,
                   help="comma-separated worker counts for "
                   "--serve-load stages (default 1,2,4)")
    p.add_argument("--load-clients", type=int, default=16, metavar="N",
                   help="concurrent load-harness clients (default 16)")
    p.add_argument("--load-duration", type=float, default=4.0,
                   metavar="SECONDS",
                   help="timed window per --serve-load stage "
                   "(default 4.0)")
    p.add_argument("--registry", metavar="DIR", default=None,
                   help="also record the report into this perf "
                   "registry (see `repro perf`)")

    p = sub.add_parser("analyze", help="workload analysis: redundancy, "
                       "multi-entry XBs, reuse distances")
    p.add_argument("--suite", choices=SUITE_NAMES, default="specint")
    p.add_argument("--index", type=int, default=0)
    p.add_argument("--length", type=int, default=100_000)

    p = sub.add_parser(
        "sweep", help="sweep XBC config fields over the registry"
    )
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--param", action="append", default=[], metavar="NAME=V1,V2",
                   help="XbcConfig field and values (repeatable)")
    p.add_argument("--size", type=int, default=8192,
                   help="base uop budget (default 8192)")
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser(
        "fuzz", help="hunt profile-space inversions where the TC "
        "out-hits the XBC"
    )
    fuzz_sub = p.add_subparsers(dest="fuzz_command", required=True)

    fp = fuzz_sub.add_parser(
        "run", help="search the profile space and write a findings corpus"
    )
    fp.add_argument("--budget", type=int, default=24, metavar="N",
                    help="candidate evaluations (default 24)")
    fp.add_argument("--seed", type=int, default=1,
                    help="search seed; the whole run replays from it")
    fp.add_argument("--base", default="server-web",
                    choices=SUITE_NAMES + SERVER_NAMES,
                    help="profile anchoring the space (default server-web)")
    fp.add_argument("--size", type=int, default=8192,
                    help="frontend uop budget (default 8192)")
    fp.add_argument("--length", type=int, default=40_000,
                    help="trace length per candidate (default 40000)")
    fp.add_argument("--explore", type=float, default=0.5,
                    help="random-restart probability (default 0.5)")
    fp.add_argument("--min-gain", type=float, default=0.0005,
                    help="objective floor for recording a finding")
    fp.add_argument("--minimize-top", type=int, default=1, metavar="K",
                    help="findings to minimize into the corpus "
                    "(default 1; 0 stores raw findings unminimized)")
    fp.add_argument("--out", metavar="FILE", default="findings.json",
                    help="findings corpus path (default findings.json)")
    _add_exec_args(fp)

    fp = fuzz_sub.add_parser(
        "replay", help="re-run corpus findings and verify bit-identity"
    )
    fp.add_argument("--corpus", metavar="FILE", default="findings.json")
    fp.add_argument("--id", default=None, metavar="PREFIX",
                    help="replay one finding (id prefix); default all")
    _add_exec_args(fp)

    fp = fuzz_sub.add_parser(
        "minimize", help="(re-)minimize corpus findings to fewest deltas"
    )
    fp.add_argument("--corpus", metavar="FILE", default="findings.json")
    fp.add_argument("--id", default=None, metavar="PREFIX",
                    help="minimize one finding (id prefix); default all")
    fp.add_argument("--min-gain", type=float, default=0.0005,
                    help="objective the minimized point must keep")
    _add_exec_args(fp)

    fp = fuzz_sub.add_parser("report", help="print a findings corpus")
    fp.add_argument("--corpus", metavar="FILE", default="findings.json")

    p = sub.add_parser(
        "generate", help="write registry traces to disk as .trace files"
    )
    _add_registry_args(p)
    p.add_argument("--out", metavar="DIR", default="traces",
                   help="output directory (default ./traces)")

    p = sub.add_parser("info", help="describe the registry workloads")
    _add_registry_args(p)
    p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache root to report statistics for "
        "(default ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the report as machine-readable JSON",
    )

    p = sub.add_parser(
        "cache", help="manage the persistent trace/result cache"
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cp = cache_sub.add_parser(
        "prune", help="remove old entries / shrink the cache to a budget"
    )
    cp.add_argument(
        "--max-age", metavar="AGE", default=None,
        help="drop entries older than AGE (e.g. 30s, 12h, 7d; "
        "plain numbers are seconds)",
    )
    cp.add_argument(
        "--max-bytes", metavar="SIZE", default=None,
        help="evict oldest entries until the cache fits SIZE "
        "(e.g. 200M, 2G; plain numbers are bytes)",
    )
    cp.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache root (default ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    cp.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without deleting anything",
    )

    add_perf_parser(sub)

    p = sub.add_parser(
        "serve", help="run the long-lived simulation service "
        "(see docs/serving.md)"
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (default 8177; 0 picks a free port)")
    p.add_argument("--queue-size", type=int, default=64, metavar="N",
                   help="bounded intake queue; beyond it submits get 429 "
                   "(default 64)")
    p.add_argument("--batch-max", type=int, default=8, metavar="N",
                   help="max jobs gathered into one engine run (default 8)")
    p.add_argument("--batch-window", type=float, default=0.05,
                   metavar="SECONDS",
                   help="how long to gather a batch (default 0.05)")
    p.add_argument("--serve-workers", type=int, default=1, metavar="N",
                   help="engine worker processes behind the scheduler; "
                   ">1 shards jobs by key over N persistent workers "
                   "(default 1 = classic in-process engine)")
    _add_exec_args(p)

    p = sub.add_parser(
        "submit", help="submit one job to a running server "
        "(falls back to inline execution)"
    )
    p.add_argument("what", choices=FRONTEND_KINDS + ("blockstats",),
                   help="frontend kind to simulate, or 'blockstats'")
    p.add_argument("--suite", choices=SUITE_NAMES, default="specint")
    p.add_argument("--index", type=int, default=0)
    p.add_argument("--length", type=int, default=150_000,
                   help="trace length in uops (default 150000)")
    p.add_argument("--size", type=int, default=8192,
                   help="structure uop budget (default 8192)")
    p.add_argument("--assoc", type=int, default=0,
                   help="associativity shorthand (0 = frontend default)")
    p.add_argument("--param", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="structure-config override (repeatable)")
    p.add_argument("--server", metavar="URL", default=None,
                   help="server base URL (default $REPRO_SERVER or "
                   "http://127.0.0.1:8177)")
    p.add_argument("--no-wait", action="store_true",
                   help="return the submission ack instead of waiting")
    p.add_argument("--follow", action="store_true",
                   help="print the NDJSON event stream while waiting")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for completion (default 300)")
    p.add_argument("--json", action="store_true",
                   help="emit the full job document as JSON")

    p = sub.add_parser(
        "jobs", help="list jobs on a running server (or its metrics)"
    )
    p.add_argument("--server", metavar="URL", default=None,
                   help="server base URL (default $REPRO_SERVER or "
                   "http://127.0.0.1:8177)")
    p.add_argument("--metrics", action="store_true",
                   help="print /metrics instead of the job list")
    p.add_argument("--health", action="store_true",
                   help="print /healthz instead of the job list")
    p.add_argument("--json", action="store_true",
                   help="emit raw JSON instead of a table")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        # Library errors (bad config, exhausted job retries) are user
        # problems, not simulator bugs: report cleanly, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # The consumer closed the pipe (`repro perf log | head`).
        # Point stdout at devnull so the interpreter's shutdown flush
        # does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "fig1":
        result = run_fig1(_registry(args), policy=_policy(args))
        print(format_fig1(result, histograms=args.histograms))
        _maybe_csv(args, results.fig1_table(result))
    elif args.command == "fig8":
        rows = run_fig8(
            _registry(args), total_uops=args.size, policy=_policy(args)
        )
        print(format_fig8(rows, total_uops=args.size))
        _maybe_csv(args, results.fig8_table(rows))
    elif args.command == "fig9":
        result = run_fig9(
            _registry(args), sizes=args.sizes, policy=_policy(args)
        )
        print(format_fig9(result))
        _maybe_csv(args, results.fig9_table(result))
    elif args.command == "fig10":
        result = run_fig10(
            _registry(args), assocs=args.assocs, total_uops=args.size,
            policy=_policy(args),
        )
        print(format_fig10(result))
        _maybe_csv(args, results.fig10_table(result))
    elif args.command == "claims":
        result = run_claims(
            _registry(args), sizes=args.sizes,
            reference_size=args.reference_size, policy=_policy(args),
        )
        print(format_claims(result))
        _maybe_csv(args, results.claims_table(result))
    elif args.command == "ablate":
        rows = run_ablations(
            _registry(args), total_uops=args.size, policy=_policy(args)
        )
        print(format_ablations(rows))
        _maybe_csv(args, results.ablations_table(rows))
    elif args.command == "scenario":
        return _dispatch_scenario(args)
    elif args.command == "fuzz":
        return _dispatch_fuzz(args)
    elif args.command == "all":
        _run_all(args)
    elif args.command == "run":
        trace = make_trace(registry_spec(args.suite, args.index, args.length))
        print(trace.describe())
        stats = run_frontend(
            args.frontend, trace, FrontendConfig(), total_uops=args.size
        )
        print(stats.summary())
    elif args.command == "analyze":
        from repro.analysis import (
            measure_fragmentation,
            measure_stack_distances,
            measure_tc_redundancy,
            measure_xb_usage,
        )

        trace = make_trace(registry_spec(args.suite, args.index, args.length))
        print(trace.describe())
        print()
        print(measure_xb_usage(trace).summary())
        print()
        print(measure_tc_redundancy(trace).summary())
        print()
        print(measure_stack_distances(trace).summary())
        print()
        print(measure_fragmentation(trace).summary())
    elif args.command == "sweep":
        from repro.harness.sweep import format_sweep, parse_param, run_sweep
        from repro.xbc.config import XbcConfig

        grid = {}
        for fragment in args.param or ["ways_per_bank=1,2,4"]:
            grid.update(parse_param(fragment))
        rows = run_sweep(grid, _registry(args),
                         base=XbcConfig(total_uops=args.size),
                         policy=_policy(args))
        print(format_sweep(rows))
        _maybe_csv(args, results.sweep_table(rows))
    elif args.command == "generate":
        from repro.trace.tracefile import save_trace

        os.makedirs(args.out, exist_ok=True)
        for spec in _registry(args):
            trace = make_trace(spec)
            path = os.path.join(args.out, f"{spec.name}.trace")
            save_trace(trace, path)
            print(f"{path}: {trace.describe()}")
    elif args.command == "bench":
        from repro.bench import (
            compare_to_baseline,
            format_report,
            run_bench,
            write_report,
        )

        try:
            load_workers = None
            if args.load_workers:
                load_workers = [
                    int(token) for token in args.load_workers.split(",")
                    if token.strip()
                ]
            report = run_bench(
                budget=args.budget,
                quick=args.quick,
                frontends=args.frontend,
                profile_path=args.profile,
                phases=args.phases.split(",") if args.phases else None,
                serve_load=args.serve_load,
                load_clients=args.load_clients,
                load_duration=args.load_duration,
                load_workers=load_workers,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        serve_line = None
        if args.serve:
            from repro.bench.serve import format_serve_bench, run_serve_bench

            report["serve"] = run_serve_bench(
                requests=8 if args.quick else 32,
                length=min(args.budget, 20_000),
            )
            serve_line = format_serve_bench(report["serve"])
        print(format_report(report))
        if serve_line:
            print(serve_line)
        if report.get("serve_load"):
            from repro.bench.serve import format_serve_load

            print(format_serve_load(report["serve_load"]))
        path = write_report(report, args.out, registry_dir=args.registry)
        print(f"[report written to {path}]")
        if args.registry:
            print(f"[perf] recorded {report['rev']} into {args.registry}")
        if args.profile:
            print(f"[profile written to {args.profile}]")
        if args.baseline:
            import json as _json

            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = _json.load(handle)
            failures = compare_to_baseline(report, baseline)
            if failures:
                for failure in failures:
                    print(f"REGRESSION {failure}", file=sys.stderr)
                return 1
            print(f"[no regression vs {args.baseline}]")
    elif args.command == "info":
        import json as _json

        from repro.sysinfo import info_data

        descriptions = []
        for spec in _registry(args):
            trace = make_trace(spec)
            descriptions.append({"name": spec.name,
                                 "describe": trace.describe()})
        if args.json:
            document = info_data(cache_root=args.cache_dir,
                                 traces=descriptions)
            print(_json.dumps(document, indent=2, sort_keys=True))
            return 0
        from repro.sysinfo import profiles_data

        for item in descriptions:
            print(item["describe"])
        print()
        print("[profiles]")
        for entry in profiles_data():
            target = (
                f"{entry['static_uops']:,}" if entry["static_uops"]
                else "n/a"
            )
            print(
                f"  {entry['name']:<14} static={target:>8} uops  "
                f"functions={entry['functions']:>5}  "
                f"depth={entry['max_call_depth']:>2}  "
                f"block={entry['mean_block_uops']:.1f} uops  "
                f"indirect={100 * entry['indirect_rate']:.1f}%"
            )
        print()
        print(f"[trace cache] {trace_cache_stats().describe()}")
        root = args.cache_dir or default_cache_dir()
        if os.path.isdir(root):
            disk = disk_cache_stats(root)
            print(
                f"[persistent cache] {root}: "
                f"traces entries={disk.traces.entries} "
                f"bytes={disk.traces.bytes}, "
                f"results entries={disk.results.entries} "
                f"bytes={disk.results.bytes}"
            )
        else:
            print(f"[persistent cache] {root}: empty (no cache directory)")
        print()
        _print_perf_info()
    elif args.command == "cache":
        return _dispatch_cache(args)
    elif args.command == "perf":
        return dispatch_perf(args)
    elif args.command == "serve":
        return _dispatch_serve(args)
    elif args.command == "submit":
        return _dispatch_submit(args)
    elif args.command == "jobs":
        return _dispatch_jobs(args)
    return 0


def _parse_age(text: str) -> float:
    """``30s`` / ``12h`` / ``7d`` / plain seconds -> seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    text = text.strip().lower()
    factor = units.get(text[-1:], None)
    digits = text[:-1] if factor else text
    try:
        value = float(digits)
    except ValueError:
        raise ConfigError(
            f"bad age {text!r}; expected e.g. 45s, 30m, 12h, 7d"
        ) from None
    if value < 0:
        raise ConfigError(f"age must be >= 0, got {text!r}")
    return value * (factor or 1.0)


def _parse_size_bytes(text: str) -> int:
    """``200M`` / ``2G`` / plain bytes -> bytes."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}
    text = text.strip().lower()
    factor = units.get(text[-1:], None)
    digits = text[:-1] if factor else text
    try:
        value = float(digits)
    except ValueError:
        raise ConfigError(
            f"bad size {text!r}; expected e.g. 500K, 200M, 2G"
        ) from None
    if value < 0:
        raise ConfigError(f"size must be >= 0, got {text!r}")
    return int(value * (factor or 1))


def _parse_override(fragment: str):
    """``name=value`` -> (name, typed value) for --param overrides."""
    name, eq, raw = fragment.partition("=")
    if not eq or not name:
        raise ConfigError(
            f"bad --param {fragment!r}; expected NAME=VALUE"
        )
    lowered = raw.strip().lower()
    if lowered in ("true", "false"):
        return name.strip(), lowered == "true"
    try:
        return name.strip(), int(raw)
    except ValueError:
        pass
    try:
        return name.strip(), float(raw)
    except ValueError:
        return name.strip(), raw


def _dispatch_cache(args: argparse.Namespace) -> int:
    max_age = _parse_age(args.max_age) if args.max_age else None
    max_bytes = (
        _parse_size_bytes(args.max_bytes) if args.max_bytes else None
    )
    if max_age is None and max_bytes is None:
        print(
            "error: cache prune needs --max-age and/or --max-bytes",
            file=sys.stderr,
        )
        return 1
    root = args.cache_dir or default_cache_dir()
    reports = prune_cache(
        root, max_age=max_age, max_bytes=max_bytes, dry_run=args.dry_run
    )
    verb = "would remove" if args.dry_run else "removed"
    for name in ("traces", "results", "manifests", "claims"):
        report = reports[name]
        print(
            f"[{name}] {verb} {report.removed_entries} entries "
            f"({report.removed_bytes} bytes), kept {report.kept_entries} "
            f"({report.kept_bytes} bytes)"
        )
    total = reports["total"]
    print(f"[total] {verb} {total.removed_entries} entries "
          f"({total.removed_bytes} bytes) under {root}")
    return 0


def _dispatch_serve(args: argparse.Namespace) -> int:
    from repro.serve.app import DEFAULT_PORT, build_app, run_server

    policy = ExecPolicy(
        workers=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout=args.job_timeout,
        progress=False,
    )
    app = build_app(
        policy=policy,
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        queue_size=args.queue_size,
        batch_max=args.batch_max,
        batch_window=args.batch_window,
        serve_workers=args.serve_workers,
    )
    return run_server(app)


def _submit_request(args: argparse.Namespace) -> dict:
    if args.what == "blockstats":
        return {
            "kind": "blockstats",
            "suite": args.suite,
            "index": args.index,
            "length": args.length,
        }
    request = {
        "kind": "sim",
        "frontend": args.what,
        "suite": args.suite,
        "index": args.index,
        "length": args.length,
        "total_uops": args.size,
        "assoc": args.assoc,
    }
    if args.param:
        overrides = dict(_parse_override(p) for p in args.param)
        request["config"] = overrides
    return request


def _dispatch_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient, submit_or_inline

    request = _submit_request(args)
    if args.follow and not args.no_wait:
        client = ServeClient(args.server, timeout=min(args.timeout, 30.0))
        if client.is_up():
            acknowledgement = client.submit(request)
            job_id = acknowledgement["job_id"]
            print(f"[submit] {acknowledgement['disposition']} job {job_id}",
                  file=sys.stderr)
            for event in client.events(job_id, timeout=args.timeout):
                print(_json.dumps(event, sort_keys=True))
            document = client.wait(job_id, timeout=args.timeout)
            document["disposition"] = acknowledgement.get("disposition")
            via = "server"
        else:
            document, via = submit_or_inline(
                request, server=args.server, wait=True,
                timeout=args.timeout,
            )
    else:
        document, via = submit_or_inline(
            request, server=args.server, wait=not args.no_wait,
            timeout=args.timeout,
        )
    if args.json:
        print(_json.dumps(document, indent=2, sort_keys=True))
        return 0 if document.get("status") in ("done", "queued", "running") \
            else 1
    return _print_submit_result(args, document, via)


def _print_submit_result(args, document: dict, via: str) -> int:
    status = document.get("status")
    job_id = document.get("job_id", "?")
    print(f"[submit] via {via}: job {job_id} {status}"
          + (f" ({document['disposition']})"
             if document.get("disposition") else ""))
    if args.no_wait and via == "server":
        print(f"[submit] poll with: repro jobs --server or "
              f"GET {document.get('url', '/jobs/' + str(job_id))}")
        return 0
    if status != "done":
        print(f"error: job ended {status}: "
              f"{document.get('error', 'unknown failure')}",
              file=sys.stderr)
        return 1
    result = document.get("result") or {}
    if args.what == "blockstats":
        from repro.exec.job import BlockStatsJob

        stats = BlockStatsJob.decode_result(result)
        for name, mean in stats.means().items():
            print(f"  {name:<16} mean {mean:.2f} uops")
    else:
        from repro.frontend.metrics import FrontendStats

        print(FrontendStats(**result).summary())
    if document.get("cached"):
        print("[submit] served from result cache")
    return 0


def _dispatch_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient

    client = ServeClient(args.server)
    if args.health:
        print(_json.dumps(client.healthz(), indent=2, sort_keys=True))
        return 0
    if args.metrics:
        print(_json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0
    document = client.jobs()
    if args.json:
        print(_json.dumps(document, indent=2, sort_keys=True))
        return 0
    jobs = document.get("jobs", [])
    if not jobs:
        print("(no jobs)")
        return 0
    print(f"{'JOB':<26} {'STATUS':<10} {'SUBS':>4} {'CACHED':>6} "
          f"{'WALL_MS':>9}  PARAMS")
    for job in jobs:
        wall = job.get("wall_ms")
        params = job.get("params", {})
        brief = ",".join(
            f"{key}={value}" for key, value in sorted(params.items())
            if key != "job"
        )
        print(
            f"{job['job_id']:<26} {job['status']:<10} "
            f"{job.get('submissions', 1):>4} "
            f"{str(bool(job.get('cached'))):>6} "
            f"{wall if wall is not None else '-':>9}  "
            f"{params.get('job', '?')}:{brief}"
        )
    return 0


def _dispatch_scenario(args: argparse.Namespace) -> int:
    from repro.harness.experiments.scenario import (
        format_scenario_matrix,
        run_scenario_matrix,
    )
    from repro.harness.registry import server_registry

    findings = []
    if args.findings:
        from repro.scenario.findings import FindingsCorpus

        findings = FindingsCorpus.load(args.findings).top(args.top)
    server_specs = (
        server_registry(
            traces_per_profile=args.server_traces,
            length_uops=args.length,
            static_uops=args.server_uops,
        )
        if args.server_traces > 0
        else []
    )
    rows = run_scenario_matrix(
        suite_specs=_registry(args),
        server_specs=server_specs,
        findings=findings,
        total_uops=args.size,
        policy=_policy(args),
    )
    print(format_scenario_matrix(rows, total_uops=args.size))
    _maybe_csv(args, results.scenario_table(rows))
    return 0


def _fuzz_policy(args: argparse.Namespace) -> ExecPolicy:
    """Like :func:`_policy` but without the per-batch progress meter.

    A fuzz run launches one tiny job batch per candidate; the engine's
    progress meter would spam a line pair per candidate, so the fuzz
    loop prints its own one-line-per-candidate log instead.
    """
    return ExecPolicy(
        workers=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout=args.job_timeout,
        progress=False,
    )


def _dispatch_fuzz(args: argparse.Namespace) -> int:
    from repro.scenario import (
        FindingsCorpus,
        FuzzConfig,
        ParameterSpace,
        minimize_evaluation,
        replay_finding,
        run_search,
    )
    from repro.scenario.findings import Finding, corpus_from_run

    if args.fuzz_command == "run":
        space = ParameterSpace.default(args.base)
        config = FuzzConfig(
            budget=args.budget,
            seed=args.seed,
            base=args.base,
            total_uops=args.size,
            length_uops=args.length,
            explore=args.explore,
            min_gain=args.min_gain,
        )
        policy = _fuzz_policy(args)

        def progress(done, budget, evaluation, best):
            print(
                f"[fuzz {done:3d}/{budget}] obj={evaluation.objective:+.4f} "
                f"best={best.objective:+.4f} "
                f"static={evaluation.spec.static_uops}",
                file=sys.stderr,
            )

        result = run_search(space, config, policy, progress=progress)
        print(
            f"[fuzz] {len(result.evaluations) + 1} evaluations, "
            f"{len(result.findings)} findings above "
            f"{config.min_gain:+.4f} "
            f"({result.invalid_points} invalid candidates)"
        )
        minimized = []
        top = max(0, args.minimize_top)
        for evaluation in result.findings[:top]:
            item = minimize_evaluation(space, evaluation, config, policy)
            minimized.append(item)
            print(
                f"[fuzz] minimized {evaluation.objective:+.4f} -> "
                f"{item.evaluation.objective:+.4f} with "
                f"{len(item.deltas)} deltas "
                f"({item.evals_used} evaluations)"
            )
        corpus = corpus_from_run(config, minimized)
        for evaluation in result.findings[top:]:
            corpus.add(Finding.from_evaluation(evaluation, config.base))
        corpus.save(args.out)
        print(_format_corpus(corpus))
        print(f"[fuzz] corpus written to {args.out}")
        return 0

    if args.fuzz_command == "replay":
        corpus = FindingsCorpus.load(args.corpus)
        targets = (
            [corpus.get(args.id)] if args.id else list(corpus.findings)
        )
        if not targets:
            print("error: corpus has no findings", file=sys.stderr)
            return 1
        policy = _fuzz_policy(args)
        failures = 0
        for finding in targets:
            report = replay_finding(finding, policy)
            if report.ok:
                print(
                    f"[replay] {finding.id[:12]} OK "
                    f"obj={report.evaluation.objective:+.4f} "
                    f"trace={finding.trace_hash[:12]}"
                )
            else:
                failures += 1
                print(f"[replay] {finding.id[:12]} MISMATCH")
                for line in report.mismatches:
                    print(f"  {line}")
        return 1 if failures else 0

    if args.fuzz_command == "minimize":
        corpus = FindingsCorpus.load(args.corpus)
        targets = (
            [corpus.get(args.id)] if args.id else list(corpus.findings)
        )
        if not targets:
            print("error: corpus has no findings", file=sys.stderr)
            return 1
        policy = _fuzz_policy(args)
        for finding in targets:
            space = ParameterSpace.default(finding.base)
            config = FuzzConfig(
                base=finding.base,
                seed=corpus.meta.get("seed", 1),
                total_uops=finding.total_uops,
                length_uops=finding.length_uops,
                min_gain=args.min_gain,
            )
            report = replay_finding(finding, policy)
            item = minimize_evaluation(
                space, report.evaluation, config, policy
            )
            corpus.findings.remove(finding)
            corpus.add(Finding.from_minimization(item, finding.base))
            print(
                f"[minimize] {finding.id[:12]}: "
                f"{item.evaluation.objective:+.4f} with "
                f"{len(item.deltas)} deltas"
            )
        corpus.save(args.corpus)
        print(f"[minimize] corpus rewritten: {args.corpus}")
        return 0

    # report
    corpus = FindingsCorpus.load(args.corpus)
    print(_format_corpus(corpus))
    return 0


def _format_corpus(corpus) -> str:
    """Human-readable corpus table (id, rates, deltas)."""
    from repro.common.tables import format_table

    rows = []
    for finding in corpus.findings:
        deltas = ",".join(sorted(finding.deltas)) or "(raw)"
        rows.append([
            finding.id[:12],
            100 * finding.tc_hit_rate,
            100 * finding.xbc_hit_rate,
            100 * finding.objective,
            len(finding.deltas),
            deltas,
        ])
    if not rows:
        return "(empty findings corpus)"
    meta = corpus.meta
    title = (
        f"Findings corpus — base={meta.get('base', '?')} "
        f"seed={meta.get('seed', '?')} "
        f"budget={meta.get('budget', '?')}"
    )
    return format_table(
        ["finding", "TC hit %", "XBC hit %", "TC-XBC pp", "n", "deltas"],
        rows,
        title=title,
    )


def _print_perf_info() -> None:
    """The ``info`` perf section: machine context + last bench report.

    Text rendering of the same data ``repro info --json`` exposes under
    ``perf`` (see :mod:`repro.sysinfo`).
    """
    from repro.sysinfo import host_data, latest_bench_report

    host = host_data()
    print(
        f"[perf] python {host['python']} "
        f"({host['implementation']}), "
        f"{host['cpu_count']} cpus, {host['platform']}"
    )
    report = latest_bench_report()
    if report is None:
        print("[perf] no BENCH_*.json found (run `repro bench`)")
        return
    phases = report.get("phases", {})
    summary = ", ".join(
        f"{name.removeprefix('frontend_')}="
        f"{phase['uops_per_sec']:,.0f} uops/s"
        for name, phase in phases.items()
    )
    print(f"[perf] last bench {report['_path']} @ "
          f"{report.get('rev', '?')}: {summary}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
