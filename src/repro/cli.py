"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artifacts:

- ``fig1`` / ``fig8`` / ``fig9`` / ``fig10`` — regenerate a figure;
- ``claims`` — the §4/§5 in-text claims (T2, T3);
- ``ablate`` — §3 design-choice ablations;
- ``run`` — simulate one frontend on one synthetic trace;
- ``bench`` — time the simulation core, write a ``BENCH_<rev>.json``;
- ``info`` — describe the registry workloads.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.common.errors import ReproError
from repro.exec.cache import default_cache_dir, disk_cache_stats
from repro.exec.engine import ExecPolicy
from repro.frontend.config import FrontendConfig
from repro.harness.registry import (
    default_registry,
    make_trace,
    registry_spec,
    trace_cache_stats,
)
from repro.harness.runner import FRONTEND_KINDS, run_frontend
from repro.harness.experiments import (
    format_ablations,
    format_claims,
    format_fig1,
    format_fig8,
    format_fig9,
    format_fig10,
    run_ablations,
    run_claims,
    run_fig1,
    run_fig8,
    run_fig9,
    run_fig10,
)
from repro.harness import results
from repro.program.profiles import SUITE_NAMES


def _maybe_csv(args, table) -> None:
    if getattr(args, "csv", None):
        results.write_csv(table, args.csv)
        print(f"[csv written to {args.csv}]")


def _run_all(args) -> None:
    """Run every figure + claims, writing text and CSV artifacts."""
    os.makedirs(args.out, exist_ok=True)
    specs = _registry(args)
    policy = _policy(args)

    fig1 = run_fig1(specs, policy=policy)
    fig8 = run_fig8(specs, policy=policy)
    fig9 = run_fig9(specs, policy=policy)
    fig10 = run_fig10(specs, policy=policy)
    claims = run_claims(specs, fig9=fig9)
    ablations = run_ablations(specs, policy=policy)

    artifacts = [
        ("fig1", format_fig1(fig1), results.fig1_table(fig1)),
        ("fig8", format_fig8(fig8), results.fig8_table(fig8)),
        ("fig9", format_fig9(fig9), results.fig9_table(fig9)),
        ("fig10", format_fig10(fig10), results.fig10_table(fig10)),
        ("claims", format_claims(claims), results.claims_table(claims)),
        ("ablations", format_ablations(ablations),
         results.ablations_table(ablations)),
    ]
    for name, text, table in artifacts:
        print(text)
        print()
        with open(os.path.join(args.out, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")
        results.write_csv(table, os.path.join(args.out, f"{name}.csv"))
    print(f"[wrote {len(artifacts)} x (txt, csv) into {args.out}/]")


def _add_registry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--traces-per-suite", type=int, default=3,
        help="synthetic traces per suite (default 3; paper used 8/8/5)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's 8/8/5 trace counts",
    )
    parser.add_argument(
        "--length", type=int, default=150_000,
        help="dynamic trace length in uops (default 150000)",
    )
    parser.add_argument(
        "--suite", choices=SUITE_NAMES, default=None,
        help="restrict to one suite",
    )


def _registry(args: argparse.Namespace):
    suites = [args.suite] if args.suite else None
    return default_registry(
        traces_per_suite=args.traces_per_suite,
        length_uops=args.length,
        full=args.full,
        suites=suites,
    )


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation jobs (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent trace/result cache root "
        "(default ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent cache for this run",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout (default: unlimited)",
    )


def _policy(args: argparse.Namespace) -> ExecPolicy:
    """Build the execution policy from the shared CLI flags."""
    return ExecPolicy(
        workers=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout=args.job_timeout,
        progress=True,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="eXtended Block Cache (HPCA 2000) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="block-length distributions (Figure 1)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--histograms", action="store_true",
                   help="also print the full distributions")
    p.add_argument("--csv", metavar="FILE", default=None,
                   help="also write the series as CSV")

    p = sub.add_parser("fig8", help="XBC vs TC bandwidth per trace (Figure 8)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--size", type=int, default=8192, help="uop budget")
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser("fig9", help="miss rate vs cache size (Figure 9)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[2048, 4096, 8192, 16384])
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser("fig10", help="miss rate vs associativity (Figure 10)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--size", type=int, default=16384, help="uop budget")
    p.add_argument("--assocs", type=int, nargs="+", default=[1, 2, 4])
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser("claims", help="§4/§5 in-text claims (T2, T3)")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[2048, 4096, 8192, 16384])
    p.add_argument("--reference-size", type=int, default=8192)
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser("ablate", help="XBC design-choice ablations")
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--size", type=int, default=8192, help="uop budget")
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser(
        "all", help="run every figure + claims, writing text and CSV"
    )
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--out", metavar="DIR", default="results",
                   help="output directory (default ./results)")

    p = sub.add_parser("run", help="simulate one frontend on one trace")
    p.add_argument("frontend", choices=FRONTEND_KINDS)
    p.add_argument("--suite", choices=SUITE_NAMES, default="specint")
    p.add_argument("--index", type=int, default=0)
    # The columnar core made longer default runs free; experiments
    # keep their own pinned lengths, so results are unaffected.
    p.add_argument("--length", type=int, default=400_000)
    p.add_argument("--size", type=int, default=8192)

    p = sub.add_parser(
        "bench", help="time trace generation and each frontend; "
        "write BENCH_<rev>.json"
    )
    p.add_argument("--budget", type=int, default=150_000,
                   help="dynamic trace length in uops (default 150000)")
    p.add_argument("--quick", action="store_true",
                   help="smaller budget and one suite (CI smoke mode)")
    p.add_argument("--frontend", action="append", default=None,
                   choices=FRONTEND_KINDS, metavar="KIND",
                   help="bench only these frontends (repeatable)")
    p.add_argument("--profile", metavar="FILE", default=None,
                   help="also cProfile one xbc run, dump stats to FILE")
    p.add_argument("--out", metavar="DIR", default=".",
                   help="directory for BENCH_<rev>.json (default .)")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="compare against a baseline report; exit 1 on "
                   ">30%% calibrated-throughput regression")

    p = sub.add_parser("analyze", help="workload analysis: redundancy, "
                       "multi-entry XBs, reuse distances")
    p.add_argument("--suite", choices=SUITE_NAMES, default="specint")
    p.add_argument("--index", type=int, default=0)
    p.add_argument("--length", type=int, default=100_000)

    p = sub.add_parser(
        "sweep", help="sweep XBC config fields over the registry"
    )
    _add_registry_args(p)
    _add_exec_args(p)
    p.add_argument("--param", action="append", default=[], metavar="NAME=V1,V2",
                   help="XbcConfig field and values (repeatable)")
    p.add_argument("--size", type=int, default=8192,
                   help="base uop budget (default 8192)")
    p.add_argument("--csv", metavar="FILE", default=None)

    p = sub.add_parser(
        "generate", help="write registry traces to disk as .trace files"
    )
    _add_registry_args(p)
    p.add_argument("--out", metavar="DIR", default="traces",
                   help="output directory (default ./traces)")

    p = sub.add_parser("info", help="describe the registry workloads")
    _add_registry_args(p)
    p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache root to report statistics for "
        "(default ~/.cache/repro or $REPRO_CACHE_DIR)",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        # Library errors (bad config, exhausted job retries) are user
        # problems, not simulator bugs: report cleanly, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "fig1":
        result = run_fig1(_registry(args), policy=_policy(args))
        print(format_fig1(result, histograms=args.histograms))
        _maybe_csv(args, results.fig1_table(result))
    elif args.command == "fig8":
        rows = run_fig8(
            _registry(args), total_uops=args.size, policy=_policy(args)
        )
        print(format_fig8(rows, total_uops=args.size))
        _maybe_csv(args, results.fig8_table(rows))
    elif args.command == "fig9":
        result = run_fig9(
            _registry(args), sizes=args.sizes, policy=_policy(args)
        )
        print(format_fig9(result))
        _maybe_csv(args, results.fig9_table(result))
    elif args.command == "fig10":
        result = run_fig10(
            _registry(args), assocs=args.assocs, total_uops=args.size,
            policy=_policy(args),
        )
        print(format_fig10(result))
        _maybe_csv(args, results.fig10_table(result))
    elif args.command == "claims":
        result = run_claims(
            _registry(args), sizes=args.sizes,
            reference_size=args.reference_size, policy=_policy(args),
        )
        print(format_claims(result))
        _maybe_csv(args, results.claims_table(result))
    elif args.command == "ablate":
        rows = run_ablations(
            _registry(args), total_uops=args.size, policy=_policy(args)
        )
        print(format_ablations(rows))
        _maybe_csv(args, results.ablations_table(rows))
    elif args.command == "all":
        _run_all(args)
    elif args.command == "run":
        trace = make_trace(registry_spec(args.suite, args.index, args.length))
        print(trace.describe())
        stats = run_frontend(
            args.frontend, trace, FrontendConfig(), total_uops=args.size
        )
        print(stats.summary())
    elif args.command == "analyze":
        from repro.analysis import (
            measure_fragmentation,
            measure_stack_distances,
            measure_tc_redundancy,
            measure_xb_usage,
        )

        trace = make_trace(registry_spec(args.suite, args.index, args.length))
        print(trace.describe())
        print()
        print(measure_xb_usage(trace).summary())
        print()
        print(measure_tc_redundancy(trace).summary())
        print()
        print(measure_stack_distances(trace).summary())
        print()
        print(measure_fragmentation(trace).summary())
    elif args.command == "sweep":
        from repro.harness.sweep import format_sweep, parse_param, run_sweep
        from repro.xbc.config import XbcConfig

        grid = {}
        for fragment in args.param or ["ways_per_bank=1,2,4"]:
            grid.update(parse_param(fragment))
        rows = run_sweep(grid, _registry(args),
                         base=XbcConfig(total_uops=args.size),
                         policy=_policy(args))
        print(format_sweep(rows))
        _maybe_csv(args, results.sweep_table(rows))
    elif args.command == "generate":
        from repro.trace.tracefile import save_trace

        os.makedirs(args.out, exist_ok=True)
        for spec in _registry(args):
            trace = make_trace(spec)
            path = os.path.join(args.out, f"{spec.name}.trace")
            save_trace(trace, path)
            print(f"{path}: {trace.describe()}")
    elif args.command == "bench":
        from repro.bench import (
            compare_to_baseline,
            format_report,
            run_bench,
            write_report,
        )

        report = run_bench(
            budget=args.budget,
            quick=args.quick,
            frontends=args.frontend,
            profile_path=args.profile,
        )
        print(format_report(report))
        path = write_report(report, args.out)
        print(f"[report written to {path}]")
        if args.profile:
            print(f"[profile written to {args.profile}]")
        if args.baseline:
            import json as _json

            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = _json.load(handle)
            failures = compare_to_baseline(report, baseline)
            if failures:
                for failure in failures:
                    print(f"REGRESSION {failure}", file=sys.stderr)
                return 1
            print(f"[no regression vs {args.baseline}]")
    elif args.command == "info":
        for spec in _registry(args):
            trace = make_trace(spec)
            print(trace.describe())
        print()
        print(f"[trace cache] {trace_cache_stats().describe()}")
        root = args.cache_dir or default_cache_dir()
        if os.path.isdir(root):
            disk = disk_cache_stats(root)
            print(
                f"[persistent cache] {root}: "
                f"traces entries={disk.traces.entries} "
                f"bytes={disk.traces.bytes}, "
                f"results entries={disk.results.entries} "
                f"bytes={disk.results.bytes}"
            )
        else:
            print(f"[persistent cache] {root}: empty (no cache directory)")
        print()
        _print_perf_info()
    return 0


def _print_perf_info() -> None:
    """The ``info`` perf section: machine context + last bench report."""
    import glob
    import json as _json
    import platform

    print(
        f"[perf] python {platform.python_version()} "
        f"({platform.python_implementation()}), "
        f"{os.cpu_count()} cpus, {platform.platform()}"
    )
    reports = []
    for path in glob.glob("BENCH_*.json"):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                reports.append((os.path.getmtime(path), path,
                                _json.load(handle)))
        except (OSError, ValueError):
            continue
    if not reports:
        print("[perf] no BENCH_*.json found (run `repro bench`)")
        return
    _, path, report = max(reports)
    phases = report.get("phases", {})
    summary = ", ".join(
        f"{name.removeprefix('frontend_')}="
        f"{phase['uops_per_sec']:,.0f} uops/s"
        for name, phase in phases.items()
    )
    print(f"[perf] last bench {path} @ {report.get('rev', '?')}: {summary}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
