"""Figure 8 — XBC versus TC uop bandwidth per trace.

Paper: "the difference between the XBC and TC bandwidth is negligible"
with the renamer limiting supply to 8 uops/cycle.
"""

from conftest import REFERENCE_SIZE, emit

from repro.harness.experiments.fig8 import format_fig8, run_fig8


def test_fig08_bandwidth(benchmark, capsys, bench_specs):
    rows = benchmark.pedantic(
        lambda: run_fig8(bench_specs, total_uops=REFERENCE_SIZE),
        rounds=1, iterations=1,
    )
    emit(capsys, format_fig8(rows, total_uops=REFERENCE_SIZE))

    assert len(rows) == len(bench_specs)
    for row in rows:
        # Negligible difference: within ~15% per trace.
        assert 0.85 < row.ratio < 1.18, row.trace
        # Both land near the renamer limit of 8 uops/cycle.
        assert 5.0 < row.tc_bandwidth <= 9.0
        assert 5.0 < row.xbc_bandwidth <= 9.0
    mean_ratio = sum(r.ratio for r in rows) / len(rows)
    assert 0.9 < mean_ratio < 1.1
