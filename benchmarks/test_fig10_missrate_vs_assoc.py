"""Figure 10 — miss rate versus associativity.

Paper: both structures show the classic curve; direct-mapped to 2-way
removes ~60% of the misses, 2-way to 4-way less.  In our model the TC
reproduces the strong curve; the XBC is structurally less sensitive
because free bank placement gives its "direct-mapped" point location
freedom a conventional cache lacks (documented in EXPERIMENTS.md).
"""

from conftest import emit

from repro.harness.experiments.fig10 import format_fig10, run_fig10

ASSOCS = (1, 2, 4)
BUDGET = 8192


def test_fig10_missrate_vs_assoc(benchmark, capsys, bench_specs):
    result = benchmark.pedantic(
        lambda: run_fig10(bench_specs, assocs=ASSOCS, total_uops=BUDGET),
        rounds=1, iterations=1,
    )
    emit(capsys, format_fig10(result))

    # Monotone improvement with associativity for both structures.
    for a, b in zip(ASSOCS, ASSOCS[1:]):
        assert result.tc_miss[b] <= result.tc_miss[a]
        assert result.xbc_miss[b] <= result.xbc_miss[a]
    # DM -> 2-way is the big step; 2-way -> 4-way smaller (paper's shape).
    tc_step1 = result.tc_miss[1] - result.tc_miss[2]
    tc_step2 = result.tc_miss[2] - result.tc_miss[4]
    assert tc_step1 > tc_step2
    # The TC's DM -> 2-way reduction is substantial.
    assert result.reduction_from_dm("tc", 2) > 0.10
    # XBC keeps beating the TC at every associativity.
    for assoc in ASSOCS:
        assert result.xbc_miss[assoc] < result.tc_miss[assoc]
