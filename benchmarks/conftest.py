"""Shared benchmark configuration.

The benchmark registry is smaller than the CLI default (two traces per
suite, 60k uops) so the full ``pytest benchmarks/ --benchmark-only``
run finishes in a couple of minutes while still averaging over every
suite.  Use ``python -m repro <figure> --full`` for the paper-scale
21-trace runs.
"""

from __future__ import annotations

import pytest

from repro.harness.registry import default_registry, make_trace

#: uop-budget sweep used by the figure benches (the paper's 8K-64K
#: sweep at ~1/4 scale).
SIZES = (2048, 4096, 8192)
REFERENCE_SIZE = 4096


@pytest.fixture(scope="session")
def bench_specs():
    return default_registry(traces_per_suite=2, length_uops=60_000)


@pytest.fixture(scope="session", autouse=True)
def warm_traces(bench_specs):
    """Generate all traces once so benchmarks time simulation only."""
    for spec in bench_specs:
        make_trace(spec)
    return None


def emit(capsys, text: str) -> None:
    """Print a result table through the capture so it reaches the console."""
    with capsys.disabled():
        print()
        print(text)
