"""Component micro-benchmarks.

Timed with pytest-benchmark's standard loop (multiple rounds): the
synthetic-workload generator, the executor, the canonical XB-stream
builder, the XBC storage array, and the predictors.  These guard
against performance regressions in the inner loops every experiment
depends on.
"""

import pytest

from repro.branch.gshare import GsharePredictor
from repro.frontend.config import FrontendConfig
from repro.harness.registry import default_registry, make_trace
from repro.program.generator import generate_program
from repro.program.profiles import profile_for_suite
from repro.trace.executor import execute_program
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend
from repro.xbc.storage import XbcStorage
from repro.xbc.xbseq import build_xb_stream


@pytest.fixture(scope="module")
def one_trace():
    spec = default_registry(traces_per_suite=1, length_uops=40_000)[0]
    return make_trace(spec)


def test_program_generation(benchmark):
    profile = profile_for_suite("specint")
    counter = iter(range(10**9))

    def generate():
        return generate_program(profile, seed=next(counter))

    program = benchmark(generate)
    assert program.num_blocks > 100


def test_trace_execution_throughput(benchmark):
    program = generate_program(profile_for_suite("specint"), seed=3)

    def execute():
        return execute_program(program, max_uops=20_000)

    trace = benchmark(execute)
    assert trace.total_uops >= 20_000


def test_xb_stream_build(benchmark, one_trace):
    steps = benchmark(lambda: build_xb_stream(one_trace))
    assert sum(len(s.uops) for s in steps) == one_trace.total_uops


def test_xbc_storage_insert_probe(benchmark):
    def insert_and_probe():
        storage = XbcStorage(XbcConfig(total_uops=8192))
        hits = 0
        for i in range(512):
            xb_ip = 0x1000 + 8 * i
            uops = [(xb_ip + 2 * j) << 4 for j in range(9)]
            mask = storage.insert_xb(xb_ip, uops)
            if mask is not None and storage.probe(xb_ip, mask, 9):
                hits += 1
        return hits

    hits = benchmark(insert_and_probe)
    assert hits > 400


def test_gshare_update_throughput(benchmark):
    predictor = GsharePredictor(16, 65536)
    pattern = [True, True, False, True] * 250

    def updates():
        for i, taken in enumerate(pattern):
            predictor.update(0x1000 + 2 * (i % 37), taken)

    benchmark(updates)
    assert predictor.predictions > 0


def test_xbc_end_to_end_simulation(benchmark, one_trace):
    def simulate():
        frontend = XbcFrontend(FrontendConfig(), XbcConfig(total_uops=4096))
        return frontend.run(one_trace)

    stats = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert stats.total_uops == one_trace.total_uops
