"""Figure 9 — uop miss rate versus cache size.

Paper: the XBC's miss rate is lower at every size; the relative
reduction is roughly constant (~29% in their setup) across sizes.
Our synthetic workloads show the same shape with a larger reduction
(the academic TC model thrashes harder at scaled-down budgets).
"""

from conftest import SIZES, emit

from repro.harness.experiments.fig9 import format_fig9, run_fig9


def test_fig09_missrate_vs_size(benchmark, capsys, bench_specs):
    result = benchmark.pedantic(
        lambda: run_fig9(bench_specs, sizes=SIZES), rounds=1, iterations=1
    )
    emit(capsys, format_fig9(result))

    for size in SIZES:
        # The headline claim: XBC wins at every size.
        assert result.xbc_miss[size] < result.tc_miss[size]
        assert 0.10 < result.reduction(size) < 0.95
    # Monotone in capacity for both structures.
    for a, b in zip(SIZES, SIZES[1:]):
        assert result.tc_miss[b] < result.tc_miss[a]
        assert result.xbc_miss[b] < result.xbc_miss[a]
    # Stability of the reduction across sizes (paper: "~29% for all
    # cache sizes"): max-min spread bounded.
    reductions = [result.reduction(s) for s in SIZES]
    assert max(reductions) - min(reductions) < 0.25
