"""Figure 1 — block-length distributions.

Paper values: basic block 7.7, XB 8.0, XB w/ promotion 10.0,
dual XB 12.7 average uops (16-uop quota).  We check the ordering and
the 16-uop cap; EXPERIMENTS.md records the measured means.
"""

from conftest import emit

from repro.harness.experiments.fig1 import format_fig1, run_fig1


def test_fig01_length_distribution(benchmark, capsys, bench_specs):
    result = benchmark.pedantic(
        lambda: run_fig1(bench_specs), rounds=1, iterations=1
    )
    emit(capsys, format_fig1(result))

    means = result.overall.means()
    # Shape: the paper's ordering of the four series.
    assert means["basic block"] <= means["XB"]
    assert means["XB"] < means["XB w/ promotion"]
    assert means["XB"] < means["dual XB"]
    # Magnitudes: all within the 16-uop quota, in the paper's ballpark.
    assert 5.0 < means["basic block"] < 10.0
    assert 8.0 < means["dual XB"] <= 16.0
    # Promotion adds meaningful length (paper: 8.0 -> 10.0).
    assert means["XB w/ promotion"] - means["XB"] > 0.5
