"""§4/§5 in-text claims.

- T2: the XBC's miss reduction is roughly size-independent
  (paper: "~29% for all cache sizes").
- T3: the TC needs substantially more capacity to match the XBC's hit
  rate (paper: "more than 50%").
"""

from conftest import REFERENCE_SIZE, SIZES, emit

from repro.harness.experiments.claims import format_claims, run_claims


def test_claims_t2_t3(benchmark, capsys, bench_specs):
    result = benchmark.pedantic(
        lambda: run_claims(
            bench_specs, sizes=SIZES, reference_size=REFERENCE_SIZE
        ),
        rounds=1, iterations=1,
    )
    emit(capsys, format_claims(result))

    # T2: reduction present at every size and roughly stable.
    assert all(r > 0.10 for r in result.reductions)
    assert result.reduction_spread < 0.25

    # T3: the TC must grow by more than 50% to match the XBC.
    assert result.tc_enlargement > 0.5
