"""Ablations of the §3 design choices.

Quantifies each mechanism the paper motivates: set search (§3.9),
promotion at constrained prediction bandwidth (§3.8), the way-bank
geometry (§3.2), and pointer (prediction) bandwidth itself.
"""

from conftest import emit

from repro.harness.experiments.ablations import format_ablations, run_ablations


def test_ablations(benchmark, capsys, bench_specs):
    rows = benchmark.pedantic(
        lambda: run_ablations(bench_specs, total_uops=4096),
        rounds=1, iterations=1,
    )
    emit(capsys, format_ablations(rows))

    by_name = {row.name: row for row in rows}
    base = by_name["baseline"]

    # §3.9: without set search, XBTB-hit/XBC-miss becomes a build-mode
    # switch and the miss rate rises.
    assert by_name["no-set-search"].miss_rate > base.miss_rate

    # Prediction bandwidth: one pointer per cycle costs fetch bandwidth.
    assert by_name["1-xb-per-cycle"].fetch_bandwidth < base.fetch_bandwidth

    # §3.8: promotion recovers fetch bandwidth where pointers are the
    # limiter (compare the two single-pointer variants).
    assert (
        by_name["1-xb-per-cycle"].fetch_bandwidth
        >= by_name["1-xb-no-promotion"].fetch_bandwidth
    )

    # Three pointers buy more fetch bandwidth than two.
    assert by_name["3-xb-per-cycle"].fetch_bandwidth > base.fetch_bandwidth

    # All variants remain functional (miss rates in a sane band).
    for row in rows:
        assert 0.0 < row.miss_rate < 0.6, row.name


def test_tc_path_associativity_extension(benchmark, capsys, bench_specs):
    """[Jaco97] path associativity barely moves our TC: the redundancy
    hurting it is alignment, not same-start path thrashing (see the
    Figure-9 discussion in EXPERIMENTS.md)."""
    from conftest import emit
    from repro.harness.registry import make_trace
    from repro.frontend.config import FrontendConfig
    from repro.tc.config import TcConfig
    from repro.tc.frontend import TcFrontend

    def run_both():
        fe = FrontendConfig()
        base = pa = 0.0
        for spec in bench_specs:
            trace = make_trace(spec)
            base += TcFrontend(fe, TcConfig(total_uops=4096)).run(trace).uop_miss_rate
            pa += TcFrontend(
                fe, TcConfig(total_uops=4096, path_associativity=True)
            ).run(trace).uop_miss_rate
        n = len(bench_specs)
        return base / n, pa / n

    base, pa = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(capsys, f"TC miss at 4096 uops: baseline {base:.2%}, "
                 f"path-associative {pa:.2%}")
    # Both configurations functional and in the same band: path
    # associativity is not the dominant redundancy cost here.
    assert 0.0 < pa < 0.6 and 0.0 < base < 0.6
    assert abs(pa - base) < 0.05
